package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"

	"carcs/internal/material"
)

func TestValidateTenantName(t *testing.T) {
	// "default" is valid too: creating it is an idempotent alias for the
	// default workspace rather than an error.
	for _, ok := range []string{"a", "ws-01", "team.alpha", "x_y", "0abc", "default"} {
		if err := ValidateTenantName(ok); err != nil {
			t.Errorf("ValidateTenantName(%q) = %v, want nil", ok, err)
		}
	}
	long := make([]byte, maxTenantName+1)
	for i := range long {
		long[i] = 'a'
	}
	for _, bad := range []string{"", "UPPER", "has space", "-leading", ".dot", "a/b", string(long)} {
		if err := ValidateTenantName(bad); err == nil {
			t.Errorf("ValidateTenantName(%q) = nil, want error", bad)
		}
	}
}

func TestWorkspacesCreateGetNames(t *testing.T) {
	def, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspaces(def)
	if _, created, err := ws.Create(DefaultTenant); err != nil || created {
		t.Fatalf("Create(default) = created=%v err=%v, want existing", created, err)
	}
	sysB, created, err := ws.Create("beta")
	if err != nil || !created {
		t.Fatalf("Create(beta) = created=%v err=%v", created, err)
	}
	if sys2, created, err := ws.Create("beta"); err != nil || created || sys2 != sysB {
		t.Fatalf("Create(beta) again = %p created=%v err=%v, want idempotent %p", sys2, created, err, sysB)
	}
	if _, _, err := ws.Create("Not Valid"); err == nil {
		t.Fatal("Create with invalid name succeeded")
	}
	if got, ok := ws.Get(""); !ok || got != ws.Default() {
		t.Fatal("Get(\"\") should alias the default workspace")
	}
	if _, ok := ws.Get("missing"); ok {
		t.Fatal("Get(missing) reported found")
	}
	ws.Create("alpha")
	want := []string{DefaultTenant, "alpha", "beta"}
	if got := ws.Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v (default first, rest sorted)", got, want)
	}
}

// TestTenantIsolationConcurrent hammers three workspaces from concurrent
// writers and proves no material crosses a workspace boundary: each
// workspace's view holds exactly its own IDs, and per-tenant result caches
// never serve another tenant's entry. Run under -race this also exercises
// the ws.mu -> sys.mu lock ordering.
func TestTenantIsolationConcurrent(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ws := p.Workspaces()
	names := []string{DefaultTenant, "alpha", "beta"}
	for _, n := range names[1:] {
		if _, _, err := ws.Create(n); err != nil {
			t.Fatal(err)
		}
	}
	_ = sys

	const perTenant = 40
	var wg sync.WaitGroup
	for ti, name := range names {
		sys, ok := ws.Get(name)
		if !ok {
			t.Fatalf("workspace %q vanished", name)
		}
		for w := 0; w < 2; w++ {
			wg.Add(1)
			go func(ti, w int, sys *System) {
				defer wg.Done()
				for i := 0; i < perTenant/2; i++ {
					id := fmt.Sprintf("t%d-w%d-%04d", ti, w, i)
					if err := sys.AddMaterial(testMat(id, arrayEntry())); err != nil {
						t.Error(err)
						return
					}
					// Interleave reads so snapshots publish mid-write.
					_ = sys.View().SortedMaterials("", nil)
				}
			}(ti, w, sys)
		}
	}
	wg.Wait()

	idsOf := func(ws *Workspaces, name string) []string {
		sys, ok := ws.Get(name)
		if !ok {
			t.Fatalf("workspace %q missing", name)
		}
		var ids []string
		for _, m := range sys.View().SortedMaterials("", nil) {
			ids = append(ids, m.ID)
		}
		sort.Strings(ids)
		return ids
	}
	for ti, name := range names {
		ids := idsOf(ws, name)
		if len(ids) != perTenant {
			t.Errorf("workspace %q has %d materials, want %d", name, len(ids), perTenant)
		}
		prefix := fmt.Sprintf("t%d-", ti)
		for _, id := range ids {
			if len(id) < len(prefix) || id[:len(prefix)] != prefix {
				t.Errorf("workspace %q leaked foreign material %q", name, id)
			}
		}
	}

	// Crash (no final checkpoint) and replay the tenant-stamped WAL: every
	// workspace must come back with a byte-identical ID set.
	before := map[string][]string{}
	for _, name := range names {
		before[name] = idsOf(ws, name)
	}
	abandon(p)
	_, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	ws2 := p2.Workspaces()
	if got, want := ws2.Names(), names; !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed workspace set = %v, want %v", got, want)
	}
	for _, name := range names {
		if got := idsOf(ws2, name); !reflect.DeepEqual(got, before[name]) {
			t.Errorf("workspace %q replayed %d ids, want %d (set mismatch)", name, len(got), len(before[name]))
		}
	}
}

// TestLegacyWALStaysTenantFree proves the zero-cost default-tenant promise:
// a system that never creates a workspace writes journal records
// byte-identical to the pre-tenancy format (no "tenant" key anywhere), and
// such a WAL replays into the default workspace.
func TestLegacyWALStaysTenantFree(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := sys.AddMaterial(testMat(fmt.Sprintf("legacy-%d", i), arrayEntry())); err != nil {
			t.Fatal(err)
		}
	}
	abandon(p)

	wal, err := os.ReadFile(filepath.Join(dir, "journal.wal"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(wal, []byte(`"tenant"`)) {
		t.Fatal("default-only WAL contains a tenant stamp; legacy byte-compat broken")
	}

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	if sys2.Len() != 5 {
		t.Fatalf("legacy WAL replayed %d materials into default, want 5", sys2.Len())
	}
	if got := p2.Workspaces().Names(); !reflect.DeepEqual(got, []string{DefaultTenant}) {
		t.Fatalf("legacy WAL materialized workspaces %v, want default only", got)
	}
}

// TestTenantCheckpointRoundTrip proves the multi-tenant checkpoint carries
// every workspace: after Checkpoint+crash the WAL is gone but all tenants
// restore from the snapshot alone, and a default-only checkpoint keeps the
// pre-tenancy shape (no "tenants" key).
func TestTenantCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("def-a", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	cp, err := os.ReadFile(filepath.Join(dir, "checkpoint.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(cp, []byte(`"tenants"`)) {
		t.Fatal("default-only checkpoint contains a tenants block; legacy byte-compat broken")
	}

	ws := p.Workspaces()
	alpha, _, err := ws.Create("alpha")
	if err != nil {
		t.Fatal(err)
	}
	if err := alpha.AddMaterial(testMat("alpha-a", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := alpha.AddMaterial(testMat("alpha-b", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	abandon(p)

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	if sys2.Len() != 1 || sys2.Material("def-a") == nil {
		t.Errorf("default workspace restored %d materials", sys2.Len())
	}
	alpha2, ok := p2.Workspaces().Get("alpha")
	if !ok {
		t.Fatal("workspace alpha lost across checkpoint restore")
	}
	if alpha2.Len() != 2 || alpha2.Material("alpha-b") == nil {
		t.Errorf("workspace alpha restored %d materials, want 2", alpha2.Len())
	}
	if alpha2.Material("def-a") != nil {
		t.Error("default material leaked into alpha on restore")
	}
}

// TestTenantQuota: quota blocks public adds with ErrQuotaExceeded but never
// replay — reopening with a quota below the stored count must still recover.
func TestTenantQuota(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ws := p.Workspaces()
	ws.SetQuota(2)
	if err := sys.AddMaterial(testMat("q-1", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("q-2", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("q-3", arrayEntry())); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("add over quota = %v, want ErrQuotaExceeded", err)
	}
	if err := sys.AddMaterials([]*material.Material{testMat("q-4", arrayEntry()), testMat("q-5", arrayEntry())}); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("batch add over quota = %v, want ErrQuotaExceeded", err)
	}
	// Quota applies to workspaces created after SetQuota too.
	beta, _, err := ws.Create("beta")
	if err != nil {
		t.Fatal(err)
	}
	if got := beta.MaterialLimit(); got != 2 {
		t.Fatalf("new workspace quota = %d, want 2", got)
	}
	abandon(p)

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	p2.Workspaces().SetQuota(1) // below stored count; replay already ran unimpeded
	if sys2.Len() != 2 {
		t.Fatalf("replay under quota recovered %d materials, want 2", sys2.Len())
	}
	if err := sys2.AddMaterial(testMat("q-6", arrayEntry())); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("post-replay add under shrunk quota = %v, want ErrQuotaExceeded", err)
	}
}
