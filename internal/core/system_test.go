package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

func testMat(id string, cls ...string) *material.Material {
	m := &material.Material{
		ID: id, Title: strings.ToUpper(id), Kind: material.Assignment,
		Level: material.CS1, Collection: "test", URL: "http://x", Year: 2018,
		Description: "an exercise about " + id,
	}
	for _, c := range cls {
		m.Classifications = append(m.Classifications, material.Classification{NodeID: c})
	}
	return m
}

func arrayEntry() string {
	return ontology.CS13().RootID() + "/sdf/fundamental-data-structures/arrays"
}

func TestAddRemoveMaterial(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	m := testMat("m-one", arrayEntry())
	if err := s.AddMaterial(m); err != nil {
		t.Fatal(err)
	}
	if err := s.AddMaterial(testMat("m-one", arrayEntry())); err == nil {
		t.Error("duplicate id accepted")
	}
	if err := s.AddMaterial(testMat("m-bad", "nowhere/at/all")); err == nil {
		t.Error("dangling classification accepted")
	}
	if s.Len() != 1 || s.Material("m-one") == nil {
		t.Fatal("material not stored")
	}
	st := s.ComputeStats()
	if st.Materials != 1 || st.Entries != 1 || st.Links != 1 {
		t.Errorf("stats = %+v", st)
	}
	if err := s.RemoveMaterial("m-one"); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveMaterial("m-one"); err == nil {
		t.Error("double remove accepted")
	}
	if s.Len() != 0 || s.ComputeStats().Links != 0 {
		t.Error("links survived removal")
	}
}

func TestReclassify(t *testing.T) {
	s, _ := New()
	loops := ontology.CS13().RootID() + "/sdf/fundamental-programming-concepts/conditional-and-iterative-control-structures"
	if err := s.AddMaterial(testMat("m", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := s.Reclassify("ghost", nil); err == nil {
		t.Error("reclassify of unknown accepted")
	}
	if err := s.Reclassify("m", []material.Classification{{NodeID: "bad"}}); err == nil {
		t.Error("invalid reclassification accepted")
	}
	// Failed reclassify must leave the old classification intact.
	if got := s.Material("m").ClassificationIDs(); !reflect.DeepEqual(got, []string{arrayEntry()}) {
		t.Fatalf("classifications after failed reclassify = %v", got)
	}
	if err := s.Reclassify("m", []material.Classification{{NodeID: loops}}); err != nil {
		t.Fatal(err)
	}
	got := s.Material("m").ClassificationIDs()
	if !reflect.DeepEqual(got, []string{loops}) {
		t.Errorf("classifications = %v", got)
	}
	if s.ComputeStats().Links != 1 {
		t.Errorf("links = %d", s.ComputeStats().Links)
	}
}

func TestSeededSystem(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() < 90 {
		t.Errorf("seeded size = %d", s.Len())
	}
	if got := s.Collections(); !reflect.DeepEqual(got, []string{"itcs3145", "nifty", "peachy"}) {
		t.Errorf("collections = %v", got)
	}
	if len(s.Materials("peachy")) != 11 {
		t.Errorf("peachy = %d", len(s.Materials("peachy")))
	}
	if len(s.Materials("")) != s.Len() {
		t.Error("Materials(\"\") size mismatch")
	}
}

func TestCoverageAndSimilarityFacade(t *testing.T) {
	s, _ := NewSeeded()
	r, err := s.Coverage("cs13", "nifty")
	if err != nil {
		t.Fatal(err)
	}
	if top := r.TopAreas(1); len(top) != 1 || top[0] != "SDF" {
		t.Errorf("nifty top = %v", top)
	}
	if _, err := s.Coverage("nope", ""); err == nil {
		t.Error("unknown ontology accepted")
	}
	all, err := s.Coverage("pdc12", "")
	if err != nil {
		t.Fatal(err)
	}
	if all.Collection != "all materials" {
		t.Errorf("label = %q", all.Collection)
	}
	g := s.SimilarityGraph("nifty", "peachy", 2)
	if len(g.Edges) != 24 { // 4 named peachy x 6 named nifty
		t.Errorf("fig3 edges = %d, want 24", len(g.Edges))
	}
}

func TestSuggestAndRecommendFacade(t *testing.T) {
	s, _ := NewSeeded()
	for _, method := range []string{"keyword", "tfidf", "bayes", "ensemble", ""} {
		sugg, err := s.Suggest(method, "cs13", "iterate over arrays of pixels in an image", 5)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if len(sugg) == 0 {
			t.Errorf("%s: no suggestions", method)
		}
	}
	if _, err := s.Suggest("oracle", "cs13", "x", 5); err == nil {
		t.Error("unknown method accepted")
	}
	if _, err := s.Suggest("tfidf", "ghost", "x", 5); err == nil {
		t.Error("unknown ontology accepted")
	}
	recs := s.Recommend([]string{arrayEntry()}, 5)
	if len(recs) == 0 {
		t.Error("no recommendations")
	}
	reps, err := s.PDCReplacements("uno", 0)
	if err != nil || len(reps) < 4 {
		t.Errorf("uno replacements = %v, %v", reps, err)
	}
	if _, err := s.PDCReplacements("ghost", 0); err == nil {
		t.Error("unknown material accepted")
	}
}

func TestSnapshotRestoreSystem(t *testing.T) {
	s, _ := NewSeeded()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != s.Len() {
		t.Fatalf("restored %d materials, want %d", back.Len(), s.Len())
	}
	for _, m := range s.Materials("") {
		bm := back.Material(m.ID)
		if bm == nil {
			t.Fatalf("lost %q", m.ID)
		}
		if bm.Title != m.Title || bm.Kind != m.Kind || bm.Year != m.Year {
			t.Errorf("%q changed: %+v vs %+v", m.ID, bm, m)
		}
		if !reflect.DeepEqual(bm.ClassificationIDs(), m.ClassificationIDs()) {
			t.Errorf("%q classifications changed", m.ID)
		}
	}
	// The restored system reproduces Figure 3.
	g := back.SimilarityGraph("nifty", "peachy", 2)
	if len(g.Edges) != 24 {
		t.Errorf("restored fig3 edges = %d", len(g.Edges))
	}
	if _, err := Restore(strings.NewReader("junk")); err == nil {
		t.Error("junk snapshot accepted")
	}
	if _, err := Restore(strings.NewReader(`{"tables":[],"links":[]}`)); err == nil {
		t.Error("snapshot without CAR-CS tables accepted")
	}
}

func TestOntologyByName(t *testing.T) {
	s, _ := New()
	if s.OntologyByName("CS13") != s.CS13() || s.OntologyByName("pdc") != s.PDC12() {
		t.Error("name resolution failed")
	}
	if s.OntologyByName("other") != nil {
		t.Error("unknown name resolved")
	}
	if s.Workflow() == nil || s.Store() == nil || s.View() == nil {
		t.Error("accessors nil")
	}
}
