package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"carcs/internal/journal"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/relstore"
	"carcs/internal/resilience"
	"carcs/internal/workflow"
)

// ErrWritesUnavailable wraps every mutation-hook failure once the journal is
// unhealthy: either an append just failed, or the circuit breaker is open
// and fast-failing writes while the disk cools down. The read path is
// unaffected — snapshot views keep serving. The HTTP layer maps this to 503
// with a Retry-After.
var ErrWritesUnavailable = errors.New("core: writes unavailable, journal degraded")

// Journal op names for system mutations.
const (
	OpAddMaterial    = "material.add"
	OpRemoveMaterial = "material.remove"
	OpReclassify     = "material.reclassify"
)

type addMaterialPayload struct {
	Material *material.Material `json:"material"`
}

type removeMaterialPayload struct {
	ID string `json:"id"`
}

type reclassifyPayload struct {
	ID              string                    `json:"id"`
	Classifications []material.Classification `json:"classifications"`
}

// checkpointDoc is the payload of a durability checkpoint: the relational
// snapshot plus the workflow queue and the learned-model state, which the
// relational store does not cover. Learn is omitted when empty, so
// checkpoints from builds predating the learned classifier still load.
type checkpointDoc struct {
	Store    json.RawMessage     `json:"store"`
	Workflow workflow.QueueState `json:"workflow"`
	Learn    *learn.State        `json:"learn,omitempty"`
}

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Seed loads the paper's three collections when the directory holds no
	// prior state. Ignored once a checkpoint exists.
	Seed bool
	// WrapWAL passes through to the journal store; fault-injection tests
	// use it to sever the log mid-record.
	WrapWAL func(journal.WriteSyncer) journal.WriteSyncer
	// Breaker tunes the write-path circuit breaker; zero values take the
	// resilience package defaults (5 consecutive failures, 5s cooldown).
	Breaker resilience.BreakerConfig
	// CommitBatch caps the records one group-commit fsync window may cover.
	// <=0 takes journal.DefaultGroupMaxBatch (64).
	CommitBatch int
	// CommitWindow bounds how long a commit window stays open for stragglers
	// once at least two writers are pending. <=0 takes
	// journal.DefaultGroupMaxWait (2ms).
	CommitWindow time.Duration
}

// Persister ties a System to a journal directory: it owns the write-ahead
// log the system's mutation hooks append to, takes checkpoints (on demand,
// on a timer, and on Close), and reports durability health.
type Persister struct {
	sys     *System
	st      *journal.Store
	breaker *resilience.Breaker
	// group is the group-commit appender every journaled mutation routes
	// through: concurrent writers (material commits, workflow transitions)
	// share one fsync per batch window, and because the group's single
	// flusher both appends and notifies, the replication sink observes
	// records in strictly ascending sequence order.
	group *journal.Group

	// sink, when set, observes every successfully journaled record. The
	// replication hub installs one to feed its in-memory tail ring and
	// wake long-polling followers. Loaded on the hot append path, hence
	// atomic rather than mutex-guarded.
	sink atomic.Pointer[func(journal.Record)]

	mu     sync.Mutex
	ticker *time.Ticker
	stop   chan struct{}
	done   chan struct{}
}

// OpenDurable opens (or initializes) a durability directory and returns the
// recovered System wired to journal every further mutation.
//
// Recovery: the last checkpoint is loaded (or a fresh — optionally seeded —
// system is built and immediately checkpointed), then the write-ahead log
// is replayed on top. A torn final record is truncated and forgotten; a
// corrupt interior record refuses the open. After recovery, mutation hooks
// are installed on both the system and its workflow queue, so every
// accepted write reaches the log, fsync'd, before it commits.
func OpenDurable(dir string, opts DurableOptions) (*System, *Persister, error) {
	var jopts *journal.Options
	if opts.WrapWAL != nil {
		jopts = &journal.Options{WrapWAL: opts.WrapWAL}
	}
	st, err := journal.Open(dir, jopts)
	if err != nil {
		return nil, nil, err
	}
	payload, haveCheckpoint, err := st.Checkpoint()
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	var sys *System
	if haveCheckpoint {
		sys, err = restoreCheckpoint(payload)
	} else if opts.Seed {
		sys, err = NewSeeded()
	} else {
		sys, err = New()
	}
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	// Replay in chunks: each chunk applies under one mutation-lock hold and
	// publishes one view, so recovering a long log costs O(records) applies
	// but only O(records / replayChunk) view publishes.
	chunk := make([]journal.Record, 0, replayChunk)
	if _, err := st.Replay(func(rec journal.Record) error {
		chunk = append(chunk, rec)
		if len(chunk) >= replayChunk {
			err := ApplyRecords(sys, chunk)
			chunk = chunk[:0]
			return err
		}
		return nil
	}); err != nil {
		st.Close()
		return nil, nil, err
	}
	if err := ApplyRecords(sys, chunk); err != nil {
		st.Close()
		return nil, nil, err
	}
	p := &Persister{sys: sys, st: st, breaker: resilience.NewBreaker(opts.Breaker)}
	p.group = journal.NewGroup(st, journal.GroupConfig{
		MaxBatch: opts.CommitBatch,
		MaxWait:  opts.CommitWindow,
		OnCommit: func(recs []journal.Record) {
			if sink := p.sink.Load(); sink != nil {
				for _, rec := range recs {
					(*sink)(rec)
				}
			}
		},
	})
	if !haveCheckpoint {
		// Pin the initial (possibly seeded) state so later opens never
		// depend on the Seed flag being passed consistently.
		if err := p.Checkpoint(); err != nil {
			p.group.Close()
			st.Close()
			return nil, nil, err
		}
	}
	sys.SetMutationHook(p.journalHook)
	sys.SetBatchMutationHook(p.journalBatchHook)
	sys.queue.SetHook(workflow.Hook(p.journalHook))
	return sys, p, nil
}

// replayChunk is how many journaled records recovery applies per mutation-
// lock hold (and per published view).
const replayChunk = 256

// journalHook is the durability gate every mutation passes through, wrapped
// in the write-path circuit breaker. While the breaker is open, writes
// fast-fail without touching the sick journal; once the cooldown elapses, a
// single half-open probe first repairs the log (Recover truncates any torn
// or unacknowledged tail and reopens the writer) and then attempts its
// append — success closes the breaker, failure re-opens it.
func (p *Persister) journalHook(op string, data any) error {
	probe, err := p.breaker.Acquire()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrWritesUnavailable, err)
	}
	if probe {
		if rerr := p.st.Recover(); rerr != nil {
			p.breaker.Record(rerr)
			return fmt.Errorf("%w: %w", ErrWritesUnavailable, rerr)
		}
	}
	_, aerr := p.group.Append(op, data)
	p.breaker.Record(aerr)
	if aerr != nil {
		return fmt.Errorf("%w: %w", ErrWritesUnavailable, aerr)
	}
	// The replication sink is fed by the group's OnCommit callback, in
	// sequence order, before this call unblocked.
	return nil
}

// journalBatchHook is journalHook for a whole batch mutation: one breaker
// round trip and one group submission covering every op, so the batch shares
// a single fsync window and commits contiguously.
func (p *Persister) journalBatchHook(ops []OpPayload) error {
	probe, err := p.breaker.Acquire()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrWritesUnavailable, err)
	}
	if probe {
		if rerr := p.st.Recover(); rerr != nil {
			p.breaker.Record(rerr)
			return fmt.Errorf("%w: %w", ErrWritesUnavailable, rerr)
		}
	}
	bops := make([]journal.BatchOp, len(ops))
	for i, op := range ops {
		bops[i] = journal.BatchOp{Op: op.Op, Data: op.Payload}
	}
	_, aerr := p.group.AppendMany(bops)
	p.breaker.Record(aerr)
	if aerr != nil {
		return fmt.Errorf("%w: %w", ErrWritesUnavailable, aerr)
	}
	return nil
}

// Breaker exposes the write-path circuit breaker so the HTTP layer can
// fast-fail writes, report readiness, and serve breaker stats.
func (p *Persister) Breaker() *resilience.Breaker { return p.breaker }

// SetReplicationSink installs (or, with nil, removes) an observer invoked
// with every record that reaches the fsync'd log, in commit order — the
// feed the replication hub ships to followers. The sink runs on the write
// path with the system's mutation lock held, so it must be fast and must
// never call back into the System or the Persister.
func (p *Persister) SetReplicationSink(fn func(journal.Record)) {
	if fn == nil {
		p.sink.Store(nil)
		return
	}
	p.sink.Store(&fn)
}

// Seq returns the last journaled sequence number — the leader's replication
// horizon.
func (p *Persister) Seq() uint64 { return p.st.Stats().Seq }

// CheckpointSeq returns the sequence covered by the latest checkpoint: the
// oldest point a follower can tail the log from without re-bootstrapping.
func (p *Persister) CheckpointSeq() uint64 { return p.st.Stats().CheckpointSeq }

// CheckpointPayload returns the latest checkpoint's snapshot payload and
// the sequence number it covers, for follower bootstrap. OpenDurable always
// pins an initial checkpoint, so a missing one is an error here.
func (p *Persister) CheckpointPayload() ([]byte, uint64, error) {
	payload, seq, ok, err := p.st.CheckpointWithMeta()
	if err != nil {
		return nil, 0, err
	}
	if !ok {
		return nil, 0, fmt.Errorf("core: no checkpoint to bootstrap from")
	}
	return payload, seq, nil
}

// TailSince returns the journaled records with Seq > from still present in
// the write-ahead log, or journal.ErrCompacted when that tail has been
// folded into a checkpoint.
func (p *Persister) TailSince(from uint64) ([]journal.Record, error) {
	return p.st.TailSince(from)
}

// RestoreFromCheckpoint rebuilds a System from a checkpoint payload as
// recovery does. A replication follower bootstraps this way from the
// leader's served checkpoint, then applies the WAL tail with ApplyRecord.
func RestoreFromCheckpoint(payload []byte) (*System, error) {
	return restoreCheckpoint(payload)
}

// ApplyRecord re-executes one journaled mutation through the commit
// pipeline, exactly as crash recovery replays the local log. Followers
// apply the leader's shipped records with it; because no mutation hook is
// installed on a follower, nothing is re-journaled, and each applied record
// publishes a fresh snapshot view just like a local commit.
func ApplyRecord(s *System, rec journal.Record) error {
	return applyOp(s, rec)
}

// ApplyRecords re-executes a run of journaled mutations as one batch: a
// single mutation-lock hold, records applied in order, and one view publish
// for the whole run. Crash recovery replays the log through it in chunks,
// and a replication follower drains its tailed WAL stream through it,
// paying the publish cost per batch instead of per record. On a failed
// record the already-applied prefix is published (matching what a record-
// at-a-time apply would have committed) and the error is returned wrapped
// with the offending sequence number.
func ApplyRecords(s *System, recs []journal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rec := range recs {
		if err := applyOpLocked(s, rec); err != nil {
			if i > 0 {
				s.publishLocked()
			}
			return fmt.Errorf("core: apply seq %d (%s): %w", rec.Seq, rec.Op, err)
		}
	}
	s.publishLocked()
	return nil
}

// applyOpLocked applies one journaled mutation with the mutation lock held
// and without publishing. Workflow ops go through the queue directly (the
// system → queue lock order matches the checkpoint path); its observer still
// republishes the generation, which is cheap and keeps workflow reads live.
func applyOpLocked(s *System, rec journal.Record) error {
	switch rec.Op {
	case OpAddMaterial:
		var p addMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.addMaterialLocked(p.Material)
	case OpRemoveMaterial:
		var p removeMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.removeMaterialLocked(p.ID)
	case OpReclassify:
		var p reclassifyPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.reclassifyLocked(p.ID, p.Classifications)
	case OpLearnTrain:
		var p learnTrainPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.applyLearnTrainLocked(p.Params)
		return nil
	case OpLearnUpdate:
		var p learnUpdatePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.applyLearnUpdateLocked(p)
		return nil
	default:
		return applyWorkflowOp(s, rec)
	}
}

func restoreCheckpoint(payload []byte) (*System, error) {
	var doc checkpointDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	store, err := relstore.Restore(bytes.NewReader(doc.Store))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint store: %w", err)
	}
	sys, err := systemFromStore(store)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint replay: %w", err)
	}
	sys.queue.SetState(doc.Workflow)
	// Learned models restore from their serialized weights, never by
	// retraining: the checkpoint may sit mid-stream between a train op and
	// later review updates, and only the exact captured state reproduces
	// what the leader had there.
	if err := sys.setLearnState(doc.Learn); err != nil {
		return nil, fmt.Errorf("core: checkpoint learn state: %w", err)
	}
	return sys, nil
}

// applyOp re-executes one journaled mutation during recovery. Hooks are not
// yet installed, so nothing is re-logged. Replay is strict: a record that
// no longer applies means the journal and checkpoint disagree, and silently
// skipping it would resurrect a state the system never held.
func applyOp(s *System, rec journal.Record) error {
	switch rec.Op {
	case OpAddMaterial:
		var p addMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.AddMaterial(p.Material)
	case OpRemoveMaterial:
		var p removeMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.RemoveMaterial(p.ID)
	case OpReclassify:
		var p reclassifyPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.Reclassify(p.ID, p.Classifications)
	case OpLearnTrain:
		var p learnTrainPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.mu.Lock()
		s.applyLearnTrainLocked(p.Params)
		s.publishLocked()
		s.mu.Unlock()
		return nil
	case OpLearnUpdate:
		var p learnUpdatePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.mu.Lock()
		s.applyLearnUpdateLocked(p)
		s.publishLocked()
		s.mu.Unlock()
		return nil
	default:
		return applyWorkflowOp(s, rec)
	}
}

// applyWorkflowOp re-executes one journaled workflow transition.
func applyWorkflowOp(s *System, rec journal.Record) error {
	switch rec.Op {
	case workflow.OpRegister:
		var p workflow.RegisterPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.queue.Register(p.Name, p.Role)
		return err
	case workflow.OpSubmit:
		var p workflow.SubmitPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.queue.Submit(p.Submitter, p.Material)
		return err
	case workflow.OpReview:
		var p workflow.ReviewPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.queue.Review(p.Editor, p.Submission, p.Decision, p.Note)
	case workflow.OpResubmit:
		var p workflow.ResubmitPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.queue.Resubmit(p.Submitter, p.Submission, p.Material)
	case workflow.OpSuggestEdit:
		var p workflow.SuggestEditPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.queue.SuggestEdit(p.Suggester, p.MaterialID, p.Field, p.OldValue, p.NewValue)
		return err
	case workflow.OpVerifyEdit:
		var p workflow.VerifyEditPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.queue.VerifyEdit(p.Editor, p.Edit, p.Accept)
	default:
		return fmt.Errorf("core: unknown journal op %q", rec.Op)
	}
}

// Checkpoint atomically snapshots the full system state (relational store +
// workflow queue) and resets the write-ahead log. Mutations are frozen for
// the duration: the lock order system → queue → journal matches the hooks'
// (system → journal, queue → journal), so checkpointing can never deadlock
// against a mutation, and no record can slip between the snapshot and the
// log reset.
func (p *Persister) Checkpoint() error {
	s := p.sys
	s.mu.Lock()
	defer s.mu.Unlock()
	ls := s.learnStateLocked()
	if len(ls.Models) == 0 {
		ls = nil
	}
	return s.queue.Freeze(func(qs workflow.QueueState) error {
		return p.st.WriteCheckpoint(func(w io.Writer) error {
			var buf bytes.Buffer
			if err := s.store.Snapshot(&buf); err != nil {
				return err
			}
			return json.NewEncoder(w).Encode(checkpointDoc{
				Store:    buf.Bytes(),
				Workflow: qs,
				Learn:    ls,
			})
		})
	})
}

// Start launches background checkpointing every interval. It is a no-op if
// already started or if interval is non-positive.
func (p *Persister) Start(interval time.Duration) {
	if interval <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.ticker = time.NewTicker(interval)
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(tick *time.Ticker, stop chan struct{}, done chan struct{}) {
		defer close(done)
		for {
			select {
			case <-tick.C:
				// A failed background checkpoint leaves the previous one
				// intact and the journal still growing; surfaced via Stats.
				_ = p.Checkpoint()
			case <-stop:
				return
			}
		}
	}(p.ticker, p.stop, p.done)
}

// Stats reports the journal/checkpoint state for the health endpoint.
func (p *Persister) Stats() journal.Stats { return p.st.Stats() }

// Close stops background checkpointing, drains the group-commit appender,
// takes a final checkpoint, and releases the journal. The system stays
// usable in memory, but further mutations fail their durability hook —
// matching a clean shutdown.
func (p *Persister) Close() error {
	p.mu.Lock()
	if p.stop != nil {
		p.ticker.Stop()
		close(p.stop)
		<-p.done
		p.stop = nil
	}
	p.mu.Unlock()
	p.group.Close()
	err := p.Checkpoint()
	if cerr := p.st.Close(); err == nil {
		err = cerr
	}
	return err
}
