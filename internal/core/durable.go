package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"carcs/internal/journal"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/relstore"
	"carcs/internal/resilience"
	"carcs/internal/workflow"
)

// ErrWritesUnavailable wraps every mutation-hook failure once the journal is
// unhealthy: either an append just failed, or the circuit breaker is open
// and fast-failing writes while the disk cools down. The read path is
// unaffected — snapshot views keep serving. The HTTP layer maps this to 503
// with a Retry-After.
var ErrWritesUnavailable = errors.New("core: writes unavailable, journal degraded")

// ErrStaleEpoch rejects a record written by a deposed leader: its epoch is
// below the applier's high-water mark. The record must never be applied —
// the new leader's history has already diverged past it.
var ErrStaleEpoch = errors.New("core: record from stale leadership epoch")

// Journal op names for system mutations.
const (
	OpAddMaterial    = "material.add"
	OpRemoveMaterial = "material.remove"
	OpReclassify     = "material.reclassify"
	// OpTenantCreate records a workspace creation. The record's Tenant
	// field carries the new workspace's name; replay and replication apply
	// materialize the workspace from the stamp, so the payload is
	// informational redundancy.
	OpTenantCreate = "tenant.create"
)

type tenantCreatePayload struct {
	Name string `json:"name"`
}

type addMaterialPayload struct {
	Material *material.Material `json:"material"`
}

type removeMaterialPayload struct {
	ID string `json:"id"`
}

type reclassifyPayload struct {
	ID              string                    `json:"id"`
	Classifications []material.Classification `json:"classifications"`
}

// checkpointDoc is the payload of a durability checkpoint: the relational
// snapshot plus the workflow queue and the learned-model state, which the
// relational store does not cover. Learn is omitted when empty, so
// checkpoints from builds predating the learned classifier still load.
//
// The top-level Store/Workflow/Learn triple is the default tenant — exactly
// the whole document before workspaces existed, so pre-tenancy checkpoints
// restore into the default workspace unchanged, and a default-only system
// keeps writing byte-identical checkpoints (Tenants is omitted when empty).
type checkpointDoc struct {
	Store    json.RawMessage      `json:"store"`
	Workflow workflow.QueueState  `json:"workflow"`
	Learn    *learn.State         `json:"learn,omitempty"`
	Tenants  map[string]tenantDoc `json:"tenants,omitempty"`
}

// tenantDoc is one non-default workspace's slice of a checkpoint.
type tenantDoc struct {
	Store    json.RawMessage     `json:"store"`
	Workflow workflow.QueueState `json:"workflow"`
	Learn    *learn.State        `json:"learn,omitempty"`
}

// DurableOptions configure OpenDurable.
type DurableOptions struct {
	// Seed loads the paper's three collections when the directory holds no
	// prior state. Ignored once a checkpoint exists.
	Seed bool
	// WrapWAL passes through to the journal store; fault-injection tests
	// use it to sever the log mid-record.
	WrapWAL func(journal.WriteSyncer) journal.WriteSyncer
	// Breaker tunes the write-path circuit breaker; zero values take the
	// resilience package defaults (5 consecutive failures, 5s cooldown).
	Breaker resilience.BreakerConfig
	// CommitBatch caps the records one group-commit fsync window may cover.
	// <=0 takes journal.DefaultGroupMaxBatch (64).
	CommitBatch int
	// CommitWindow bounds how long a commit window stays open for stragglers
	// once at least two writers are pending. <=0 takes
	// journal.DefaultGroupMaxWait (2ms).
	CommitWindow time.Duration
}

// Persister ties a System to a journal directory: it owns the write-ahead
// log the system's mutation hooks append to, takes checkpoints (on demand,
// on a timer, and on Close), and reports durability health.
type Persister struct {
	sys     *System
	ws      *Workspaces
	st      *journal.Store
	breaker *resilience.Breaker
	// group is the group-commit appender every journaled mutation routes
	// through: concurrent writers (material commits, workflow transitions)
	// share one fsync per batch window, and because the group's single
	// flusher both appends and notifies, the replication sink observes
	// records in strictly ascending sequence order.
	group *journal.Group

	// sink, when set, observes every successfully journaled record. The
	// replication hub installs one to feed its in-memory tail ring and
	// wake long-polling followers. Loaded on the hot append path, hence
	// atomic rather than mutex-guarded.
	sink atomic.Pointer[func(journal.Record)]

	mu     sync.Mutex
	ticker *time.Ticker
	stop   chan struct{}
	done   chan struct{}
}

// OpenDurable opens (or initializes) a durability directory and returns the
// recovered System wired to journal every further mutation.
//
// Recovery: the last checkpoint is loaded (or a fresh — optionally seeded —
// system is built and immediately checkpointed), then the write-ahead log
// is replayed on top. A torn final record is truncated and forgotten; a
// corrupt interior record refuses the open. After recovery, mutation hooks
// are installed on both the system and its workflow queue, so every
// accepted write reaches the log, fsync'd, before it commits.
func OpenDurable(dir string, opts DurableOptions) (*System, *Persister, error) {
	var jopts *journal.Options
	if opts.WrapWAL != nil {
		jopts = &journal.Options{WrapWAL: opts.WrapWAL}
	}
	st, err := journal.Open(dir, jopts)
	if err != nil {
		return nil, nil, err
	}
	payload, haveCheckpoint, err := st.Checkpoint()
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	var ws *Workspaces
	if haveCheckpoint {
		ws, err = restoreWorkspaces(payload)
	} else {
		var sys *System
		if opts.Seed {
			sys, err = NewSeeded()
		} else {
			sys, err = New()
		}
		if sys != nil {
			ws = NewWorkspaces(sys)
		}
	}
	if err != nil {
		st.Close()
		return nil, nil, err
	}
	sys := ws.Default()
	// Replay in chunks: each chunk applies under one mutation-lock hold per
	// tenant run and publishes one view per run, so recovering a long log
	// costs O(records) applies but only O(records / replayChunk) view
	// publishes on the common single-tenant stretches. Records route to
	// their stamped workspace; an unknown workspace is materialized on
	// first sight (its tenant.create op travels the same stream).
	chunk := make([]journal.Record, 0, replayChunk)
	if _, err := st.Replay(func(rec journal.Record) error {
		chunk = append(chunk, rec)
		if len(chunk) >= replayChunk {
			err := ApplyRecordsWorkspaces(ws, chunk)
			chunk = chunk[:0]
			return err
		}
		return nil
	}); err != nil {
		st.Close()
		return nil, nil, err
	}
	if err := ApplyRecordsWorkspaces(ws, chunk); err != nil {
		st.Close()
		return nil, nil, err
	}
	// The fence starts at the directory's recorded epoch: a node restarting
	// after its deposition cannot apply (or write) records from the term it
	// lost.
	ws.FenceEpoch(st.Epoch())
	p := &Persister{sys: sys, ws: ws, st: st, breaker: resilience.NewBreaker(opts.Breaker)}
	p.group = journal.NewGroup(st, journal.GroupConfig{
		MaxBatch: opts.CommitBatch,
		MaxWait:  opts.CommitWindow,
		OnCommit: func(recs []journal.Record) {
			if sink := p.sink.Load(); sink != nil {
				for _, rec := range recs {
					(*sink)(rec)
				}
			}
		},
	})
	if !haveCheckpoint {
		// Pin the initial (possibly seeded) state so later opens never
		// depend on the Seed flag being passed consistently.
		if err := p.Checkpoint(); err != nil {
			p.group.Close()
			st.Close()
			return nil, nil, err
		}
	}
	// Every recovered workspace journals through the same group appender;
	// each hook stamps its tenant. Workspaces created later — through the
	// API or by a replicated stream — are wired by the create hooks.
	ws.Each(func(name string, tsys *System) { p.installHooks(name, tsys) })
	ws.SetCreateHooks(
		func(name string, tsys *System) error {
			if err := p.appendJournal([]journal.BatchOp{{
				Tenant: name, Op: OpTenantCreate, Data: tenantCreatePayload{Name: name},
			}}); err != nil {
				return err
			}
			p.installHooks(name, tsys)
			return nil
		},
		func(name string, tsys *System) error {
			p.installHooks(name, tsys)
			return nil
		},
	)
	return sys, p, nil
}

// Workspaces returns the tenant set recovered from (and persisted to) this
// durability directory. The returned value owns workspace creation: Create
// journals a tenant.create op and wires durability hooks before the new
// workspace becomes visible.
func (p *Persister) Workspaces() *Workspaces { return p.ws }

// AdoptDurable turns an already-populated workspace set into a durable
// leader: the path a promoted replication follower takes. The follower's
// state (bootstrapped from the old leader's checkpoint plus the applied WAL
// tail up to seq) is adopted as-is into a fresh journal directory. The
// writer's cursor is advanced to seq so new writes continue the old
// leader's sequence line, the directory is stamped with the bumped epoch,
// an initial checkpoint pins the adopted state, and mutation hooks are
// installed so the workspaces journal every further write — exactly as if
// OpenDurable had recovered them here.
//
// The directory must be fresh (no checkpoint, no journaled records): the
// adopted state's only durable home so far is the old leader's directory,
// and silently merging it into an unrelated journal would splice two
// histories.
func AdoptDurable(dir string, ws *Workspaces, seq, epoch uint64, opts DurableOptions) (*Persister, error) {
	var jopts *journal.Options
	if opts.WrapWAL != nil {
		jopts = &journal.Options{WrapWAL: opts.WrapWAL}
	}
	st, err := journal.Open(dir, jopts)
	if err != nil {
		return nil, err
	}
	if _, have, err := st.Checkpoint(); err != nil {
		st.Close()
		return nil, err
	} else if have {
		st.Close()
		return nil, fmt.Errorf("core: adopt needs a fresh journal directory, %s holds a checkpoint", dir)
	}
	if _, err := st.Replay(nil); err != nil {
		st.Close()
		return nil, err
	}
	if got := st.Stats().Seq; got != 0 {
		st.Close()
		return nil, fmt.Errorf("core: adopt needs a fresh journal directory, %s holds records through seq %d", dir, got)
	}
	if err := st.AdvanceTo(seq); err != nil {
		st.Close()
		return nil, err
	}
	st.SetEpoch(epoch)
	ws.FenceEpoch(epoch)
	p := &Persister{sys: ws.Default(), ws: ws, st: st, breaker: resilience.NewBreaker(opts.Breaker)}
	p.group = journal.NewGroup(st, journal.GroupConfig{
		MaxBatch: opts.CommitBatch,
		MaxWait:  opts.CommitWindow,
		OnCommit: func(recs []journal.Record) {
			if sink := p.sink.Load(); sink != nil {
				for _, rec := range recs {
					(*sink)(rec)
				}
			}
		},
	})
	// Pin the adopted state before answering any write: a crash after
	// promotion must recover to at least the promotion point, and followers
	// of the new leader bootstrap from this checkpoint.
	if err := p.Checkpoint(); err != nil {
		p.group.Close()
		st.Close()
		return nil, err
	}
	ws.Each(func(name string, tsys *System) { p.installHooks(name, tsys) })
	ws.SetCreateHooks(
		func(name string, tsys *System) error {
			if err := p.appendJournal([]journal.BatchOp{{
				Tenant: name, Op: OpTenantCreate, Data: tenantCreatePayload{Name: name},
			}}); err != nil {
				return err
			}
			p.installHooks(name, tsys)
			return nil
		},
		func(name string, tsys *System) error {
			p.installHooks(name, tsys)
			return nil
		},
	)
	return p, nil
}

// tenantStamp maps a workspace name to its journal stamp: the default
// tenant journals unstamped (omitempty), keeping its records byte-identical
// to pre-tenancy ones.
func tenantStamp(name string) string {
	if name == DefaultTenant {
		return ""
	}
	return name
}

// installHooks wires one workspace's mutation, batch, and workflow hooks to
// the shared journal, stamped with its tenant.
func (p *Persister) installHooks(name string, sys *System) {
	stamp := tenantStamp(name)
	one := func(op string, data any) error {
		return p.appendJournal([]journal.BatchOp{{Tenant: stamp, Op: op, Data: data}})
	}
	sys.SetMutationHook(one)
	sys.SetBatchMutationHook(func(ops []OpPayload) error {
		bops := make([]journal.BatchOp, len(ops))
		for i, op := range ops {
			bops[i] = journal.BatchOp{Tenant: stamp, Op: op.Op, Data: op.Payload}
		}
		return p.appendJournal(bops)
	})
	sys.queue.SetHook(workflow.Hook(one))
}

// replayChunk is how many journaled records recovery applies per mutation-
// lock hold (and per published view).
const replayChunk = 256

// appendJournal is the durability gate every mutation passes through,
// wrapped in the write-path circuit breaker. While the breaker is open,
// writes fast-fail without touching the sick journal; once the cooldown
// elapses, a single half-open probe first repairs the log (Recover truncates
// any torn or unacknowledged tail and reopens the writer) and then attempts
// its append — success closes the breaker, failure re-opens it. A batch
// shares one breaker round trip and one group submission, so it lands in a
// single fsync window and commits contiguously.
func (p *Persister) appendJournal(bops []journal.BatchOp) error {
	probe, err := p.breaker.Acquire()
	if err != nil {
		return fmt.Errorf("%w: %w", ErrWritesUnavailable, err)
	}
	if probe {
		if rerr := p.st.Recover(); rerr != nil {
			p.breaker.Record(rerr)
			return fmt.Errorf("%w: %w", ErrWritesUnavailable, rerr)
		}
	}
	_, aerr := p.group.AppendMany(bops)
	p.breaker.Record(aerr)
	if aerr != nil {
		return fmt.Errorf("%w: %w", ErrWritesUnavailable, aerr)
	}
	// The replication sink is fed by the group's OnCommit callback, in
	// sequence order, before this call unblocked.
	return nil
}

// Breaker exposes the write-path circuit breaker so the HTTP layer can
// fast-fail writes, report readiness, and serve breaker stats.
func (p *Persister) Breaker() *resilience.Breaker { return p.breaker }

// SetReplicationSink installs (or, with nil, removes) an observer invoked
// with every record that reaches the fsync'd log, in commit order — the
// feed the replication hub ships to followers. The sink runs on the write
// path with the system's mutation lock held, so it must be fast and must
// never call back into the System or the Persister.
func (p *Persister) SetReplicationSink(fn func(journal.Record)) {
	if fn == nil {
		p.sink.Store(nil)
		return
	}
	p.sink.Store(&fn)
}

// Seq returns the last journaled sequence number — the leader's replication
// horizon.
func (p *Persister) Seq() uint64 { return p.st.Stats().Seq }

// Epoch returns the leadership epoch stamped on new records.
func (p *Persister) Epoch() uint64 { return p.st.Epoch() }

// CheckpointSeq returns the sequence covered by the latest checkpoint: the
// oldest point a follower can tail the log from without re-bootstrapping.
func (p *Persister) CheckpointSeq() uint64 { return p.st.Stats().CheckpointSeq }

// CheckpointPayload returns the latest checkpoint's snapshot payload with
// the sequence number and leadership epoch it covers, for follower
// bootstrap. OpenDurable always pins an initial checkpoint, so a missing one
// is an error here.
func (p *Persister) CheckpointPayload() (payload []byte, seq, epoch uint64, err error) {
	payload, seq, epoch, ok, err := p.st.CheckpointWithMeta()
	if err != nil {
		return nil, 0, 0, err
	}
	if !ok {
		return nil, 0, 0, fmt.Errorf("core: no checkpoint to bootstrap from")
	}
	return payload, seq, epoch, nil
}

// TailSince returns the journaled records with Seq > from still present in
// the write-ahead log, or journal.ErrCompacted when that tail has been
// folded into a checkpoint.
func (p *Persister) TailSince(from uint64) ([]journal.Record, error) {
	return p.st.TailSince(from)
}

// RestoreFromCheckpoint rebuilds the default tenant's System from a
// checkpoint payload as recovery does. Single-tenant callers use it
// directly; multi-tenant consumers use RestoreWorkspaces.
func RestoreFromCheckpoint(payload []byte) (*System, error) {
	ws, err := restoreWorkspaces(payload)
	if err != nil {
		return nil, err
	}
	return ws.Default(), nil
}

// RestoreWorkspaces rebuilds the full tenant set from a checkpoint payload.
// A replication follower bootstraps this way from the leader's served
// checkpoint, then applies the WAL tail with ApplyRecordsWorkspaces.
func RestoreWorkspaces(payload []byte) (*Workspaces, error) {
	return restoreWorkspaces(payload)
}

// ApplyRecordsWorkspaces routes a run of journaled records to their stamped
// workspaces and applies each contiguous same-tenant stretch as one batch
// (one mutation-lock hold, one view publish). A record stamped with a
// workspace the set does not know materializes it first — its tenant.create
// op travels the same stream, so both recovery and followers converge on
// the leader's tenant set without any side channel.
func ApplyRecordsWorkspaces(ws *Workspaces, recs []journal.Record) error {
	for start := 0; start < len(recs); {
		end := start + 1
		for end < len(recs) && recs[end].Tenant == recs[start].Tenant {
			end++
		}
		run := recs[start:end]
		sys, err := ws.EnsureReplay(run[0].Tenant)
		if err != nil {
			return fmt.Errorf("core: apply seq %d: %w", run[0].Seq, err)
		}
		if err := ApplyRecords(sys, run); err != nil {
			return err
		}
		// Raise the set-wide fence to the run's epoch after it applies, so
		// a workspace materialized later in the stream inherits it and a
		// deposed leader cannot sneak stale records in via a fresh tenant.
		if e := run[len(run)-1].Epoch; e > 0 {
			ws.FenceEpoch(e)
		}
		start = end
	}
	return nil
}

// ApplyRecord re-executes one journaled mutation through the commit
// pipeline, exactly as crash recovery replays the local log. Followers
// apply the leader's shipped records with it; because no mutation hook is
// installed on a follower, nothing is re-journaled, and each applied record
// publishes a fresh snapshot view just like a local commit.
func ApplyRecord(s *System, rec journal.Record) error {
	if rec.Epoch < s.epochMark.Load() {
		return fmt.Errorf("core: apply seq %d (%s): %w: epoch %d below fence %d",
			rec.Seq, rec.Op, ErrStaleEpoch, rec.Epoch, s.epochMark.Load())
	}
	s.FenceEpoch(rec.Epoch)
	return applyOp(s, rec)
}

// ApplyRecords re-executes a run of journaled mutations as one batch: a
// single mutation-lock hold, records applied in order, and one view publish
// for the whole run. Crash recovery replays the log through it in chunks,
// and a replication follower drains its tailed WAL stream through it,
// paying the publish cost per batch instead of per record. On a failed
// record the already-applied prefix is published (matching what a record-
// at-a-time apply would have committed) and the error is returned wrapped
// with the offending sequence number.
func ApplyRecords(s *System, recs []journal.Record) error {
	if len(recs) == 0 {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i, rec := range recs {
		if mark := s.epochMark.Load(); rec.Epoch < mark {
			if i > 0 {
				s.publishLocked()
			}
			return fmt.Errorf("core: apply seq %d (%s): %w: epoch %d below fence %d",
				rec.Seq, rec.Op, ErrStaleEpoch, rec.Epoch, mark)
		}
		s.FenceEpoch(rec.Epoch)
		if err := applyOpLocked(s, rec); err != nil {
			if i > 0 {
				s.publishLocked()
			}
			return fmt.Errorf("core: apply seq %d (%s): %w", rec.Seq, rec.Op, err)
		}
	}
	s.publishLocked()
	return nil
}

// applyOpLocked applies one journaled mutation with the mutation lock held
// and without publishing. Workflow ops go through the queue directly (the
// system → queue lock order matches the checkpoint path); its observer still
// republishes the generation, which is cheap and keeps workflow reads live.
func applyOpLocked(s *System, rec journal.Record) error {
	switch rec.Op {
	case OpTenantCreate:
		// The routing layer (ApplyRecordsWorkspaces) already materialized
		// the workspace from the record's tenant stamp; at the System
		// level there is nothing to apply.
		return nil
	case OpAddMaterial:
		var p addMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.addMaterialLocked(p.Material)
	case OpRemoveMaterial:
		var p removeMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.removeMaterialLocked(p.ID)
	case OpReclassify:
		var p reclassifyPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.reclassifyLocked(p.ID, p.Classifications)
	case OpLearnTrain:
		var p learnTrainPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.applyLearnTrainLocked(p.Params)
		return nil
	case OpLearnUpdate:
		var p learnUpdatePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.applyLearnUpdateLocked(p)
		return nil
	default:
		return applyWorkflowOp(s, rec)
	}
}

func restoreWorkspaces(payload []byte) (*Workspaces, error) {
	var doc checkpointDoc
	if err := json.Unmarshal(payload, &doc); err != nil {
		return nil, fmt.Errorf("core: decode checkpoint: %w", err)
	}
	def, err := restoreTenantDoc(tenantDoc{Store: doc.Store, Workflow: doc.Workflow, Learn: doc.Learn})
	if err != nil {
		return nil, err
	}
	ws := NewWorkspaces(def)
	for name, td := range doc.Tenants {
		if err := ValidateTenantName(name); err != nil {
			return nil, fmt.Errorf("core: checkpoint tenant: %w", err)
		}
		sys, err := restoreTenantDoc(td)
		if err != nil {
			return nil, fmt.Errorf("core: checkpoint tenant %q: %w", name, err)
		}
		ws.tenants[name] = sys
	}
	return ws, nil
}

// restoreTenantDoc rebuilds one workspace's System from its checkpoint
// slice.
func restoreTenantDoc(doc tenantDoc) (*System, error) {
	store, err := relstore.Restore(bytes.NewReader(doc.Store))
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint store: %w", err)
	}
	sys, err := systemFromStore(store)
	if err != nil {
		return nil, fmt.Errorf("core: checkpoint replay: %w", err)
	}
	sys.queue.SetState(doc.Workflow)
	// Learned models restore from their serialized weights, never by
	// retraining: the checkpoint may sit mid-stream between a train op and
	// later review updates, and only the exact captured state reproduces
	// what the leader had there.
	if err := sys.setLearnState(doc.Learn); err != nil {
		return nil, fmt.Errorf("core: checkpoint learn state: %w", err)
	}
	return sys, nil
}

// applyOp re-executes one journaled mutation during recovery. Hooks are not
// yet installed, so nothing is re-logged. Replay is strict: a record that
// no longer applies means the journal and checkpoint disagree, and silently
// skipping it would resurrect a state the system never held.
func applyOp(s *System, rec journal.Record) error {
	switch rec.Op {
	case OpTenantCreate:
		return nil
	case OpAddMaterial:
		var p addMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.AddMaterial(p.Material)
	case OpRemoveMaterial:
		var p removeMaterialPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.RemoveMaterial(p.ID)
	case OpReclassify:
		var p reclassifyPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.Reclassify(p.ID, p.Classifications)
	case OpLearnTrain:
		var p learnTrainPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.mu.Lock()
		s.applyLearnTrainLocked(p.Params)
		s.publishLocked()
		s.mu.Unlock()
		return nil
	case OpLearnUpdate:
		var p learnUpdatePayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		s.mu.Lock()
		s.applyLearnUpdateLocked(p)
		s.publishLocked()
		s.mu.Unlock()
		return nil
	default:
		return applyWorkflowOp(s, rec)
	}
}

// applyWorkflowOp re-executes one journaled workflow transition.
func applyWorkflowOp(s *System, rec journal.Record) error {
	switch rec.Op {
	case workflow.OpRegister:
		var p workflow.RegisterPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.queue.Register(p.Name, p.Role)
		return err
	case workflow.OpSubmit:
		var p workflow.SubmitPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.queue.Submit(p.Submitter, p.Material)
		return err
	case workflow.OpReview:
		var p workflow.ReviewPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.queue.Review(p.Editor, p.Submission, p.Decision, p.Note)
	case workflow.OpResubmit:
		var p workflow.ResubmitPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.queue.Resubmit(p.Submitter, p.Submission, p.Material)
	case workflow.OpSuggestEdit:
		var p workflow.SuggestEditPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		_, err := s.queue.SuggestEdit(p.Suggester, p.MaterialID, p.Field, p.OldValue, p.NewValue)
		return err
	case workflow.OpVerifyEdit:
		var p workflow.VerifyEditPayload
		if err := json.Unmarshal(rec.Data, &p); err != nil {
			return err
		}
		return s.queue.VerifyEdit(p.Editor, p.Edit, p.Accept)
	default:
		return fmt.Errorf("core: unknown journal op %q", rec.Op)
	}
}

// Checkpoint atomically snapshots the full state of every workspace
// (relational store + workflow queue + learned models) and resets the
// write-ahead log. Mutations are frozen for the duration: the lock order
// workspaces → system → queue → journal matches the hooks' (system →
// journal, queue → journal) and workspace creation's (workspaces →
// journal), so checkpointing can never deadlock against a mutation, and no
// record — including a tenant.create — can slip between the snapshot and
// the log reset. Systems lock in deterministic order (default first, then
// sorted tenant names); the workflow queues freeze as a nested chain so all
// of them stay pinned across the single checkpoint write.
func (p *Persister) Checkpoint() error {
	ws := p.ws
	ws.mu.RLock()
	defer ws.mu.RUnlock()
	names := make([]string, 0, len(ws.tenants))
	for n := range ws.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	systems := make([]*System, 0, len(names)+1)
	systems = append(systems, ws.def)
	for _, n := range names {
		systems = append(systems, ws.tenants[n])
	}
	for _, s := range systems {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	learnStates := make([]*learn.State, len(systems))
	for i, s := range systems {
		ls := s.learnStateLocked()
		if len(ls.Models) == 0 {
			ls = nil
		}
		learnStates[i] = ls
	}
	qstates := make([]workflow.QueueState, len(systems))
	var freeze func(i int) error
	freeze = func(i int) error {
		if i < len(systems) {
			return systems[i].queue.Freeze(func(qs workflow.QueueState) error {
				qstates[i] = qs
				return freeze(i + 1)
			})
		}
		return p.st.WriteCheckpoint(func(w io.Writer) error {
			doc := checkpointDoc{Workflow: qstates[0], Learn: learnStates[0]}
			var buf bytes.Buffer
			if err := systems[0].store.Snapshot(&buf); err != nil {
				return err
			}
			doc.Store = buf.Bytes()
			if len(names) > 0 {
				doc.Tenants = make(map[string]tenantDoc, len(names))
				for i, n := range names {
					var tbuf bytes.Buffer
					if err := systems[i+1].store.Snapshot(&tbuf); err != nil {
						return err
					}
					doc.Tenants[n] = tenantDoc{
						Store:    tbuf.Bytes(),
						Workflow: qstates[i+1],
						Learn:    learnStates[i+1],
					}
				}
			}
			return json.NewEncoder(w).Encode(doc)
		})
	}
	return freeze(0)
}

// Start launches background checkpointing every interval. It is a no-op if
// already started or if interval is non-positive.
func (p *Persister) Start(interval time.Duration) {
	if interval <= 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil {
		return
	}
	p.ticker = time.NewTicker(interval)
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func(tick *time.Ticker, stop chan struct{}, done chan struct{}) {
		defer close(done)
		for {
			select {
			case <-tick.C:
				// A failed background checkpoint leaves the previous one
				// intact and the journal still growing; surfaced via Stats.
				_ = p.Checkpoint()
			case <-stop:
				return
			}
		}
	}(p.ticker, p.stop, p.done)
}

// Stats reports the journal/checkpoint state for the health endpoint.
func (p *Persister) Stats() journal.Stats { return p.st.Stats() }

// Close stops background checkpointing, drains the group-commit appender,
// takes a final checkpoint, and releases the journal. The system stays
// usable in memory, but further mutations fail their durability hook —
// matching a clean shutdown.
func (p *Persister) Close() error {
	p.mu.Lock()
	if p.stop != nil {
		p.ticker.Stop()
		close(p.stop)
		<-p.done
		p.stop = nil
	}
	p.mu.Unlock()
	p.group.Close()
	err := p.Checkpoint()
	if cerr := p.st.Close(); err == nil {
		err = cerr
	}
	return err
}
