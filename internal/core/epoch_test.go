package core

import (
	"encoding/json"
	"errors"
	"testing"

	"carcs/internal/journal"
)

// matRecord builds a journaled material.add for the given id at the given
// epoch, the record shape a leader's WAL ships to followers.
func matRecord(t *testing.T, seq, epoch uint64, id string) journal.Record {
	t.Helper()
	data, err := json.Marshal(addMaterialPayload{Material: testMat(id, arrayEntry())})
	if err != nil {
		t.Fatal(err)
	}
	return journal.Record{Seq: seq, Epoch: epoch, Op: OpAddMaterial, Data: data}
}

// TestApplyRecordRejectsStaleEpoch: once a system has seen epoch E, a
// record stamped with a lower term is a deposed leader's write and must be
// refused — this is the applier half of the fencing protocol.
func TestApplyRecordRejectsStaleEpoch(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	s.FenceEpoch(2)
	if err := ApplyRecord(s, matRecord(t, 1, 1, "stale")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
	if s.Len() != 0 {
		t.Fatalf("stale record applied: %d materials", s.Len())
	}
	// Equal and higher epochs apply; a higher epoch ratchets the fence.
	if err := ApplyRecord(s, matRecord(t, 1, 2, "current")); err != nil {
		t.Fatal(err)
	}
	if err := ApplyRecord(s, matRecord(t, 2, 3, "next-term")); err != nil {
		t.Fatal(err)
	}
	if got := s.EpochMark(); got != 3 {
		t.Fatalf("EpochMark = %d, want 3", got)
	}
	// The ratchet holds: the old term is now fenced out.
	if err := ApplyRecord(s, matRecord(t, 3, 2, "late")); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch after ratchet", err)
	}
}

// TestApplyRecordsStaleEpochPublishesPrefix: a batch that hits a stale
// record applies and publishes the good prefix — exactly what record-at-a-
// time apply would have committed — and surfaces ErrStaleEpoch for the
// rest.
func TestApplyRecordsStaleEpochPublishesPrefix(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	recs := []journal.Record{
		matRecord(t, 1, 1, "ok-1"),
		matRecord(t, 2, 2, "ok-2"),
		matRecord(t, 3, 1, "stale"), // epoch regressed below the fence rec 2 raised
		matRecord(t, 4, 2, "never"),
	}
	if err := ApplyRecords(s, recs); !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch", err)
	}
	if s.Len() != 2 {
		t.Fatalf("applied %d materials, want the 2-record prefix", s.Len())
	}
	// The prefix was published: the snapshot view reflects both records.
	if got := len(s.View().Materials("")); got != 2 {
		t.Fatalf("published view holds %d materials, want 2", got)
	}
	if got := s.EpochMark(); got != 2 {
		t.Fatalf("EpochMark = %d, want 2", got)
	}
}

// TestApplyRecordsWorkspacesFencesFreshTenants: the set-wide fence must
// cover workspaces materialized after the fence was raised, so a deposed
// leader cannot route stale records around it via a new tenant.
func TestApplyRecordsWorkspacesFencesFreshTenants(t *testing.T) {
	def, err := New()
	if err != nil {
		t.Fatal(err)
	}
	ws := NewWorkspaces(def)
	first := matRecord(t, 1, 3, "seed")
	if err := ApplyRecordsWorkspaces(ws, []journal.Record{first}); err != nil {
		t.Fatal(err)
	}
	if got := ws.Epoch(); got != 3 {
		t.Fatalf("workspace-set epoch = %d, want 3", got)
	}
	// A stale-epoch record aimed at a tenant that does not exist yet: the
	// workspace is materialized, but it inherits the fence and refuses.
	stale := matRecord(t, 2, 2, "smuggled")
	stale.Tenant = "fresh"
	err = ApplyRecordsWorkspaces(ws, []journal.Record{stale})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("err = %v, want ErrStaleEpoch for fresh tenant", err)
	}
	sys, ok := ws.Get("fresh")
	if !ok {
		t.Fatal("fresh workspace not materialized")
	}
	if sys.Len() != 0 {
		t.Fatalf("stale record applied to fresh tenant: %d materials", sys.Len())
	}
}
