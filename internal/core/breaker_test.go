package core

import (
	"errors"
	"sync"
	"testing"
	"time"

	"carcs/internal/journal"
	"carcs/internal/resilience"
	"carcs/internal/workflow"
)

// faultControl is the test's hand on the journal medium: every (re)opened
// WAL sink is wrapped in a FaultWriter, and while sick, new writers are
// severed immediately — so half-open probes keep failing until heal.
type faultControl struct {
	mu   sync.Mutex
	cur  *journal.FaultWriter
	sick bool
}

func (fc *faultControl) wrap(ws journal.WriteSyncer) journal.WriteSyncer {
	fw := journal.NewFaultWriter(ws, -1, false)
	fc.mu.Lock()
	fc.cur = fw
	if fc.sick {
		fw.SeverAfter(0)
	}
	fc.mu.Unlock()
	return fw
}

func (fc *faultControl) sever(n int64) {
	fc.mu.Lock()
	fc.sick = true
	fc.cur.SeverAfter(n)
	fc.mu.Unlock()
}

func (fc *faultControl) heal() {
	fc.mu.Lock()
	fc.sick = false
	fc.mu.Unlock()
}

// TestWriteBreakerLifecycle walks the full degradation story: consecutive
// journal faults trip the breaker, writes fast-fail while reads keep
// serving, a probe against the still-sick disk re-opens the breaker, and
// once the disk heals a probe repairs the log and closes the breaker. The
// final crash-reopen proves the WAL stayed consistent throughout.
func TestWriteBreakerLifecycle(t *testing.T) {
	dir := t.TempDir()
	fc := &faultControl{}
	cooldown := 80 * time.Millisecond
	sys, p, err := OpenDurable(dir, DurableOptions{
		WrapWAL: fc.wrap,
		Breaker: resilience.BreakerConfig{FailureThreshold: 2, Cooldown: cooldown},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p)

	if err := sys.AddMaterial(testMat("ok-1", arrayEntry())); err != nil {
		t.Fatal(err)
	}

	// Sever mid-frame: the next append tears, the one after hits the
	// sticky writer error. Two consecutive failures trip the breaker.
	fc.sever(4)
	err = sys.AddMaterial(testMat("f-1", arrayEntry()))
	if !errors.Is(err, ErrWritesUnavailable) || !errors.Is(err, journal.ErrFault) {
		t.Fatalf("first fault err = %v, want ErrWritesUnavailable wrapping ErrFault", err)
	}
	err = sys.AddMaterial(testMat("f-2", arrayEntry()))
	if !errors.Is(err, ErrWritesUnavailable) {
		t.Fatalf("second fault err = %v", err)
	}
	if !p.Breaker().FastFail() {
		t.Fatal("breaker not open after threshold failures")
	}

	// Open breaker: writes fast-fail without touching the journal; the
	// shared hook guards workflow writes too.
	err = sys.AddMaterial(testMat("f-3", arrayEntry()))
	if !errors.Is(err, ErrWritesUnavailable) || !errors.Is(err, resilience.ErrCircuitOpen) {
		t.Fatalf("fast-fail err = %v, want ErrCircuitOpen in chain", err)
	}
	if _, err := sys.Workflow().Register("zoe", workflow.RoleSubmitter); !errors.Is(err, ErrWritesUnavailable) {
		t.Fatalf("workflow write during open breaker err = %v", err)
	}

	// The read path is untouched: failed writes rolled back, accepted ones
	// serve.
	v := sys.View()
	if v.Material("ok-1") == nil {
		t.Fatal("read path lost accepted material")
	}
	if v.Material("f-1") != nil || v.Material("f-3") != nil {
		t.Fatal("failed write visible on read path")
	}

	// Past the cooldown a probe runs Recover + append against the
	// still-sick disk; it fails and the breaker re-opens.
	time.Sleep(cooldown + 20*time.Millisecond)
	err = sys.AddMaterial(testMat("f-4", arrayEntry()))
	if !errors.Is(err, ErrWritesUnavailable) || !errors.Is(err, journal.ErrFault) {
		t.Fatalf("probe on sick disk err = %v, want journal fault", err)
	}
	if !p.Breaker().FastFail() {
		t.Fatal("breaker not re-opened after failed probe")
	}
	if st := p.Breaker().Stats(); st.Trips != 2 || st.Probes != 1 {
		t.Fatalf("breaker stats = %+v, want 2 trips 1 probe", st)
	}

	// Disk heals; the next probe repairs the log and closes the breaker.
	fc.heal()
	time.Sleep(cooldown + 20*time.Millisecond)
	if err := sys.AddMaterial(testMat("ok-2", arrayEntry())); err != nil {
		t.Fatalf("probe after heal: %v", err)
	}
	if p.Breaker().Open() {
		t.Fatal("breaker still open after successful probe")
	}
	if err := sys.AddMaterial(testMat("ok-3", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	abandon(p) // crash without a checkpoint: only the WAL survives

	// Reopen: every acknowledged write is there, no phantom resurrects,
	// and replay does not trip over torn frames Recover cleaned up.
	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("reopen after faulted run: %v", err)
	}
	defer abandon(p2)
	for _, id := range []string{"ok-1", "ok-2", "ok-3"} {
		if sys2.Material(id) == nil {
			t.Errorf("acknowledged material %s lost", id)
		}
	}
	for _, id := range []string{"f-1", "f-2", "f-3", "f-4"} {
		if sys2.Material(id) != nil {
			t.Errorf("failed write %s resurrected", id)
		}
	}
}
