package core

import (
	"fmt"
	"sort"

	"carcs/internal/classify"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/textproc"
	"carcs/internal/workflow"
)

// Journal op names for learned-model mutations.
//
// A train op journals only its hyperparameters: applying it retrains from
// the classified materials present at that point in the op stream, which is
// itself a deterministic function of the stream — so crash recovery and
// replication followers reproduce the leader's model byte for byte from a
// few hundred bytes of WAL instead of a multi-megabyte weight blob (the
// journal caps records at 16 MiB, and a weight dump would crowd out real
// mutations in every checkpoint interval). An update op journals the
// reviewed document's text plus the accepted/rejected labels; applying it
// replays the same online SGD steps everywhere.
const (
	OpLearnTrain  = "learn.train"
	OpLearnUpdate = "learn.update"
)

type learnTrainPayload struct {
	Params learn.Params `json:"params"`
}

type learnUpdatePayload struct {
	// Text is the reviewed material's search text; each model re-analyzes
	// it with the shared pipeline, so the op stays readable in the journal.
	Text string `json:"text"`
	// Accept and Reject map ontology key ("cs13", "pdc12") to entry IDs a
	// reviewer confirmed or refused for the document.
	Accept map[string][]string `json:"accept,omitempty"`
	Reject map[string][]string `json:"reject,omitempty"`
}

// learnedOntologies returns the system's ontologies in fixed (key) order so
// every train/update applies models in the same sequence everywhere.
func (s *System) learnedOntologies() []*ontology.Ontology {
	return []*ontology.Ontology{s.cs13, s.pdc12}
}

// TrainLearned (re)trains the learned classifier for both ontologies from
// every currently classified material, journaling the operation so recovery
// and followers retrain identically. The freshly trained models replace the
// current ones in the next published view; in-flight views keep the models
// they pinned.
func (s *System) TrainLearned(p learn.Params) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.hookLocked(OpLearnTrain, learnTrainPayload{Params: p}); err != nil {
		return fmt.Errorf("core: train: %w", err)
	}
	s.applyLearnTrainLocked(p)
	s.publishLocked()
	return nil
}

// applyLearnTrainLocked retrains both models from the live corpus. Callers
// hold mu and publish afterwards.
func (s *System) applyLearnTrainLocked(p learn.Params) {
	for _, o := range s.learnedOntologies() {
		exs := learn.ExamplesFromMaterials(o, s.engine.All())
		m := learn.Train(o, exs, p)
		if prev := s.learned[o]; prev != nil {
			// Version stays monotonic across retrains so /api/health and
			// the suggestion metadata never appear to move backwards.
			m.SetVersion(prev.Version() + 1)
		}
		s.learned[o] = m
	}
	s.lastTrainGen = s.gen.Load() + 1
}

// LearnFromReview folds one human review verdict into the learned models:
// an accepted submission confirms its classifications as positives, a
// rejected one marks them as negatives. The update is journaled (and so
// replicated and crash-safe) and applied as a copy-on-write model step. A
// verdict on a material with no in-ontology labels, or arriving before any
// model has been trained, is a silent no-op — there is nothing to learn.
func (s *System) LearnFromReview(m *material.Material, accepted bool) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p := learnUpdatePayload{Text: m.SearchText()}
	labels := make(map[string][]string)
	for _, o := range s.learnedOntologies() {
		var ids []string
		for _, id := range m.ClassificationIDs() {
			if o.Has(id) {
				ids = append(ids, id)
			}
		}
		if len(ids) > 0 {
			sort.Strings(ids)
			labels[s.ontologyKey(o)] = ids
		}
	}
	if len(labels) == 0 {
		return nil
	}
	if accepted {
		p.Accept = labels
	} else {
		p.Reject = labels
	}
	trained := false
	for _, o := range s.learnedOntologies() {
		if s.learned[o].Trained() {
			trained = true
		}
	}
	if !trained {
		return nil
	}
	if err := s.hookLocked(OpLearnUpdate, p); err != nil {
		return fmt.Errorf("core: learn from review: %w", err)
	}
	s.applyLearnUpdateLocked(p)
	s.publishLocked()
	return nil
}

// applyLearnUpdateLocked replays one journaled review update onto the
// trained models. Callers hold mu and publish afterwards.
func (s *System) applyLearnUpdateLocked(p learnUpdatePayload) {
	terms := textproc.Terms(p.Text)
	for _, o := range s.learnedOntologies() {
		key := s.ontologyKey(o)
		pos, neg := p.Accept[key], p.Reject[key]
		if len(pos) == 0 && len(neg) == 0 {
			continue
		}
		if m := s.learned[o]; m.Trained() {
			s.learned[o] = m.Update(terms, pos, neg)
		}
	}
}

// LearnState snapshots the learned models' full serializable state — the
// checkpoint payload and the byte-identity witness the replication tests
// compare across nodes.
func (s *System) LearnState() *learn.State {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.learnStateLocked()
}

func (s *System) learnStateLocked() *learn.State {
	st := &learn.State{Models: make(map[string]*learn.ModelState)}
	for _, o := range s.learnedOntologies() {
		if m := s.learned[o]; m != nil {
			st.Models[s.ontologyKey(o)] = m.State()
		}
	}
	return st
}

// setLearnState installs checkpointed models during recovery or follower
// bootstrap. Unknown ontology keys are an error: a checkpoint naming an
// ontology this build does not know cannot be restored faithfully.
func (s *System) setLearnState(st *learn.State) error {
	if st == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for key, ms := range st.Models {
		o := s.OntologyByName(key)
		if o == nil {
			return fmt.Errorf("core: checkpoint learn state for unknown ontology %q", key)
		}
		m, err := learn.FromState(o, ms)
		if err != nil {
			return err
		}
		s.learned[o] = m
	}
	s.publishLocked()
	return nil
}

// LearnModelStats describes one ontology's learned model for /api/health.
type LearnModelStats struct {
	Ontology string `json:"ontology"`
	Version  int    `json:"version"`
	Examples int    `json:"examples"`
	Classes  int    `json:"classes"`
	Trained  bool   `json:"trained"`
}

// LearnStats summarizes the learned subsystem for /api/health.
type LearnStats struct {
	Models []LearnModelStats `json:"models"`
	// LastTrainGen is the system generation at which the current models
	// were installed by a full (re)train; zero before any train.
	LastTrainGen uint64 `json:"last_train_gen"`
	// ReviewQueueDepth is how many submissions are awaiting human review.
	ReviewQueueDepth int `json:"review_queue_depth"`
}

// LearnStats gathers the learned-model summary for the health endpoint.
func (s *System) LearnStats() LearnStats {
	s.mu.Lock()
	st := LearnStats{LastTrainGen: s.lastTrainGen}
	for _, o := range s.learnedOntologies() {
		ms := LearnModelStats{Ontology: s.ontologyKey(o)}
		if m := s.learned[o]; m != nil {
			ms.Version = m.Version()
			ms.Examples = m.Examples()
			ms.Classes = m.Classes()
			ms.Trained = m.Trained()
		}
		st.Models = append(st.Models, ms)
	}
	s.mu.Unlock()
	st.ReviewQueueDepth = len(s.queue.Pending())
	return st
}

// ReviewItem is one entry of the active-learning review queue: a pending
// workflow submission scored by how uncertain the learned models are about
// its document.
type ReviewItem struct {
	Submission *workflow.Submission
	// Uncertainty is the margin-sampling score in [0, 1]: the maximum over
	// both ontologies' models of 1 - (p1 - p2) on calibrated posteriors.
	// Before any model is trained every item scores 1 and the queue
	// degrades to FIFO.
	Uncertainty float64
	// Suggestions are the learned model's current best guesses for the
	// document (top 3 across ontologies), giving the reviewer the machine's
	// side of the disagreement.
	Suggestions []classify.Suggestion
}

// ReviewQueue returns the pending submissions ordered for active learning:
// most-uncertain first, so reviewer time lands where a verdict teaches the
// model the most — the follow-up paper's answer to the "one day of expert
// time per corpus" bottleneck. Ties (including the untrained cold start)
// fall back to submission order, i.e. FIFO.
func (s *System) ReviewQueue() []ReviewItem {
	v := s.View()
	pending := s.queue.Pending()
	out := make([]ReviewItem, 0, len(pending))
	for _, sub := range pending {
		it := ReviewItem{Submission: sub, Uncertainty: 0}
		if sub.Material != nil {
			terms := textproc.Terms(sub.Material.SearchText())
			it.Uncertainty = 1
			if len(terms) > 0 {
				u, anyTrained := 0.0, false
				for _, o := range s.learnedOntologies() {
					lm := v.learned[o]
					if !lm.Trained() {
						continue
					}
					anyTrained = true
					if mu := lm.Uncertainty(terms); mu > u {
						u = mu
					}
					it.Suggestions = append(it.Suggestions, lm.SuggestTerms(terms, 3)...)
				}
				if anyTrained {
					it.Uncertainty = u
				}
				sort.SliceStable(it.Suggestions, func(i, j int) bool {
					return it.Suggestions[i].Score > it.Suggestions[j].Score
				})
				if len(it.Suggestions) > 3 {
					it.Suggestions = it.Suggestions[:3]
				}
			}
		}
		out = append(out, it)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Uncertainty != out[j].Uncertainty {
			return out[i].Uncertainty > out[j].Uncertainty
		}
		return out[i].Submission.ID < out[j].Submission.ID
	})
	return out
}
