package core

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
)

// addChunked builds a fresh system and adds ms through the batch path in
// chunks of the given size; chunk <= 0 uses the sequential AddMaterial path.
func addChunked(t *testing.T, ms []*material.Material, chunk int) *System {
	t.Helper()
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if chunk <= 0 {
		for _, m := range ms {
			if err := s.AddMaterial(m); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	for i := 0; i < len(ms); i += chunk {
		end := i + chunk
		if end > len(ms) {
			end = len(ms)
		}
		if err := s.AddMaterials(ms[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func snapshotString(t *testing.T, s *System) string {
	t.Helper()
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestAddMaterialsMatchesSequential is the batch-publish equivalence
// invariant: for any chunking of the same ordered input, AddMaterials must
// leave byte-identical relational state to N sequential AddMaterial calls —
// same row ids, same links, same everything the snapshot serializes.
func TestAddMaterialsMatchesSequential(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 40, Seed: 7}).All()
	want := snapshotString(t, addChunked(t, mats, 0))
	for _, chunk := range []int{1, 2, 5, len(mats)} {
		if got := snapshotString(t, addChunked(t, mats, chunk)); got != want {
			t.Errorf("chunk=%d produced different final state", chunk)
		}
	}
	// A different input order is a different (valid) final state; the
	// equivalence must hold along that order too.
	shuffled := make([]*material.Material, len(mats))
	copy(shuffled, mats)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	wantShuffled := snapshotString(t, addChunked(t, shuffled, 0))
	if got := snapshotString(t, addChunked(t, shuffled, 6)); got != wantShuffled {
		t.Error("shuffled input: batched state diverged from sequential")
	}
}

// TestAddMaterialsModelEquivalence probes the incremental models (search
// index, bayes, co-occurrence) that the relational snapshot does not
// serialize: query results must match between the batched and sequential
// fold paths.
func TestAddMaterialsModelEquivalence(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 30, Seed: 11}).All()
	seq := addChunked(t, mats, 0)
	bat := addChunked(t, mats, 7)
	for _, q := range []string{"parallel matrix", "sorting arrays", "threads locks speedup"} {
		sh, _ := seq.View().SearchText(q, 10)
		bh, _ := bat.View().SearchText(q, 10)
		if len(sh) != len(bh) {
			t.Fatalf("query %q: %d vs %d hits", q, len(sh), len(bh))
		}
		for i := range sh {
			if sh[i].Material.ID != bh[i].Material.ID || sh[i].Score != bh[i].Score {
				t.Errorf("query %q hit %d: %s/%v vs %s/%v",
					q, i, sh[i].Material.ID, sh[i].Score, bh[i].Material.ID, bh[i].Score)
			}
		}
	}
	text := "students parallelize dense matrix multiplication with shared memory threads"
	ss, serr := seq.View().SuggestDirect("bayes", "cs13", text, 5)
	bs, berr := bat.View().SuggestDirect("bayes", "cs13", text, 5)
	if (serr == nil) != (berr == nil) || len(ss) != len(bs) {
		t.Fatalf("bayes suggest diverged: %v/%v, %d vs %d", serr, berr, len(ss), len(bs))
	}
	for i := range ss {
		if ss[i].NodeID != bs[i].NodeID || ss[i].Score != bs[i].Score {
			t.Errorf("bayes suggestion %d: %s/%v vs %s/%v",
				i, ss[i].NodeID, ss[i].Score, bs[i].NodeID, bs[i].Score)
		}
	}
}

// TestAddMaterialsAllOrNothing: any refused item rejects the whole batch
// with a *BatchItemError naming the offender, and nothing commits.
func TestAddMaterialsAllOrNothing(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddMaterial(testMat("m-stored", arrayEntry())); err != nil {
		t.Fatal(err)
	}

	var bie *BatchItemError
	err = s.AddMaterials([]*material.Material{
		testMat("m-a", arrayEntry()),
		testMat("m-b", arrayEntry()),
		testMat("m-a", arrayEntry()), // in-batch duplicate
	})
	if !errors.As(err, &bie) || bie.Index != 2 || bie.ID != "m-a" {
		t.Fatalf("in-batch dup: err = %v", err)
	}

	err = s.AddMaterials([]*material.Material{
		testMat("m-c", arrayEntry()),
		testMat("m-stored", arrayEntry()), // duplicate against the corpus
	})
	if !errors.As(err, &bie) || bie.Index != 1 || bie.ID != "m-stored" {
		t.Fatalf("stored dup: err = %v", err)
	}

	err = s.AddMaterials([]*material.Material{
		testMat("m-d", "no/such/node"), // invalid classification
	})
	if !errors.As(err, &bie) || bie.Index != 0 || bie.ID != "m-d" {
		t.Fatalf("invalid item: err = %v", err)
	}

	if s.Len() != 1 || s.Material("m-a") != nil || s.Material("m-c") != nil {
		t.Errorf("refused batch leaked state: len=%d", s.Len())
	}
	if err := s.AddMaterials(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}

// TestAddMaterialsDurableReplay: a batch commit is journaled as one run of
// records, and replaying the log after an unclean shutdown reconstructs the
// exact same state.
func TestAddMaterialsDurableReplay(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 12, Seed: 9}).All()
	if err := sys.AddMaterials(mats[:8]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(mats[8]); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterials(mats[9:]); err != nil {
		t.Fatal(err)
	}
	want := snapshotString(t, sys)
	st := p.Stats()
	if st.Batches == 0 || st.BatchRecords < 11 {
		t.Errorf("batch commits not reflected in stats: %+v", st)
	}
	// Unclean shutdown: drain the group but skip the final checkpoint, so
	// reopening must recover the batches from the write-ahead log.
	p.group.Close()
	if err := p.st.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := snapshotString(t, sys2); got != want {
		t.Error("replayed state diverged from pre-crash state")
	}
}
