package core

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"carcs/internal/journal"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/workflow"
)

// abandon drops a durable system without a final checkpoint, simulating a
// process crash: whatever reached the write-ahead log is all that survives.
func abandon(p *Persister) { _ = p.st.Close() }

// pdcEntry returns the first classifiable PDC12 entry.
func pdcEntry() string {
	o := ontology.PDC12()
	var id string
	o.Walk(o.RootID(), func(n *ontology.Node, _ int) bool {
		if id == "" && n.Kind.Classifiable() {
			id = n.ID
		}
		return true
	})
	return id
}

func TestOpenDurableFreshReopenEmptyJournal(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Len() != 0 {
		t.Fatalf("fresh unseeded system has %d materials", sys.Len())
	}
	// The initial checkpoint is taken eagerly so reopening never depends on
	// the Seed flag.
	if _, err := os.Stat(filepath.Join(dir, "checkpoint.json")); err != nil {
		t.Fatalf("initial checkpoint missing: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, p2, err := OpenDurable(dir, DurableOptions{Seed: true})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if sys2.Len() != 0 {
		t.Fatalf("reopen ignored the checkpoint and seeded %d materials", sys2.Len())
	}
}

func TestDurableMutationsSurviveCrashWithoutCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("wal-a", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("wal-b", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := sys.RemoveMaterial("wal-a"); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Workflow().Register("alice", workflow.RoleSubmitter); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Workflow().Submit("alice", testMat("wal-sub", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	abandon(p) // crash: no final checkpoint

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	if sys2.Material("wal-a") != nil {
		t.Error("removed material resurrected")
	}
	if sys2.Material("wal-b") == nil {
		t.Error("journaled material lost")
	}
	if a, ok := sys2.Workflow().Account("alice"); !ok || a.Role != workflow.RoleSubmitter {
		t.Errorf("journaled account lost: %+v ok=%v", a, ok)
	}
	pend := sys2.Workflow().Pending()
	if len(pend) != 1 || pend[0].Material.ID != "wal-sub" {
		t.Errorf("journaled submission lost: %+v", pend)
	}
}

func TestDurableCheckpointTruncatesJournal(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("cp-a", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if p.Stats().WALRecords != 1 {
		t.Fatalf("wal records = %d, want 1", p.Stats().WALRecords)
	}
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.WALRecords != 0 || st.WALBytes != 0 {
		t.Errorf("post-checkpoint wal = %+v, want empty", st)
	}
	if err := sys.AddMaterial(testMat("cp-b", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	abandon(p)

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	if sys2.Material("cp-a") == nil || sys2.Material("cp-b") == nil {
		t.Error("checkpointed or journaled material lost")
	}
}

// TestCrashRecoveryTornJournalRecord is the acceptance scenario: mutations
// flow into the journal, the journal is severed mid-record by the
// fault-injection writer, and reopening from disk restores every
// fully-written mutation while discarding the torn tail.
func TestCrashRecoveryTornJournalRecord(t *testing.T) {
	dir := t.TempDir()
	var fw *journal.FaultWriter
	sys, p, err := OpenDurable(dir, DurableOptions{
		WrapWAL: func(ws journal.WriteSyncer) journal.WriteSyncer {
			fw = journal.NewFaultWriter(ws, -1, false)
			return fw
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"keep-1", "keep-2", "keep-3"} {
		if err := sys.AddMaterial(testMat(id, arrayEntry())); err != nil {
			t.Fatal(err)
		}
	}
	if err := sys.Reclassify("keep-2", []material.Classification{{NodeID: pdcEntry()}}); err != nil {
		t.Fatal(err)
	}
	// Sever the journal 7 bytes into the next record's frame.
	fw.SeverAfter(7)
	err = sys.AddMaterial(testMat("torn", arrayEntry()))
	if !errors.Is(err, journal.ErrFault) {
		t.Fatalf("severed add = %v, want the injected fault", err)
	}
	// Write-ahead ordering: the refused mutation must not be visible in
	// memory either.
	if sys.Material("torn") != nil {
		t.Fatal("mutation visible in memory although its journal write failed")
	}
	// The journal is now sticky-failed: further mutations are refused
	// rather than silently non-durable.
	if err := sys.AddMaterial(testMat("after-fault", arrayEntry())); err == nil {
		t.Fatal("mutation accepted after journal failure")
	}
	abandon(p) // crash without checkpoint

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatalf("recovery refused a torn tail: %v", err)
	}
	defer abandon(p2)
	for _, id := range []string{"keep-1", "keep-2", "keep-3"} {
		if sys2.Material(id) == nil {
			t.Errorf("fully-written mutation %s lost", id)
		}
	}
	if got := sys2.Material("keep-2").ClassificationIDs(); !reflect.DeepEqual(got, []string{pdcEntry()}) {
		t.Errorf("reclassify lost: %v", got)
	}
	if sys2.Material("torn") != nil || sys2.Material("after-fault") != nil {
		t.Error("partial or refused record applied on recovery")
	}
	// The torn bytes are gone from disk; new mutations append cleanly.
	if err := sys2.AddMaterial(testMat("post-recovery", arrayEntry())); err != nil {
		t.Fatal(err)
	}
}

func TestCrashRecoverySyncFailure(t *testing.T) {
	dir := t.TempDir()
	var fw *journal.FaultWriter
	sys, p, err := OpenDurable(dir, DurableOptions{
		WrapWAL: func(ws journal.WriteSyncer) journal.WriteSyncer {
			fw = journal.NewFaultWriter(ws, -1, false)
			return fw
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("synced", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	fw.SeverOnSync()
	if err := sys.AddMaterial(testMat("unsynced", arrayEntry())); !errors.Is(err, journal.ErrFault) {
		t.Fatalf("add with failing sync = %v, want injected fault", err)
	}
	if sys.Material("unsynced") != nil {
		t.Fatal("un-fsync'd mutation visible in memory")
	}
	abandon(p)

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	if sys2.Material("synced") == nil {
		t.Error("synced mutation lost")
	}
	// The unsynced record's bytes did reach the (simulated) page cache and
	// are complete, so recovery may legitimately surface it — the guarantee
	// is only that the *caller* was told it did not commit. What recovery
	// must never do is invent partial state.
	if m := sys2.Material("unsynced"); m != nil && len(m.ClassificationIDs()) == 0 {
		t.Error("recovered record is partial")
	}
}

func TestDurableWorkflowRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wf := sys.Workflow()
	if _, err := wf.Register("sue", workflow.RoleSubmitter); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.Register("ed", workflow.RoleEditor); err != nil {
		t.Fatal(err)
	}
	sub, err := wf.Submit("sue", testMat("flow-1", arrayEntry()))
	if err != nil {
		t.Fatal(err)
	}
	if err := wf.Review("ed", sub.ID, workflow.StatusApproved, "nice"); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("flow-1", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if _, err := wf.SuggestEdit("sue", "flow-1", "title", "FLOW-1", "Better"); err != nil {
		t.Fatal(err)
	}
	// Mix checkpointed and journal-only state: checkpoint now, then one
	// more op that lives only in the journal.
	if err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := wf.VerifyEdit("ed", 1, true); err != nil {
		t.Fatal(err)
	}
	abandon(p)

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	wf2 := sys2.Workflow()
	if len(wf2.Pending()) != 0 {
		t.Errorf("reviewed submission back in pending: %+v", wf2.Pending())
	}
	apprvd := wf2.Approved()
	if len(apprvd) != 1 || apprvd[0].ID != "flow-1" {
		t.Errorf("approved list = %+v", apprvd)
	}
	if len(wf2.UnverifiedEdits()) != 0 {
		t.Errorf("verified edit back in queue: %+v", wf2.UnverifiedEdits())
	}
	if sys2.Material("flow-1") == nil {
		t.Error("installed material lost")
	}
}

func TestPersisterBackgroundCheckpoint(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("bg-1", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	p.Start(5 * time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().WALRecords != 0 {
		if time.Now().After(deadline) {
			t.Fatal("background checkpoint never drained the journal")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Mutations during background checkpointing must not deadlock or race.
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 20; i++ {
			if err := sys.AddMaterial(testMat(matID("bg-mut", i), arrayEntry())); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p2)
	if sys2.Len() != 21 {
		t.Errorf("recovered %d materials, want 21", sys2.Len())
	}
}

func TestDurableHealthStats(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := sys.AddMaterial(testMat("hs-1", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Dir != dir || st.WALRecords != 1 || st.Seq == 0 || st.Err != "" {
		t.Errorf("stats = %+v", st)
	}
	if st.CheckpointAt.IsZero() || st.CheckpointBytes == 0 {
		t.Errorf("initial checkpoint not reflected in stats: %+v", st)
	}
}

func matID(prefix string, i int) string {
	return prefix + "-" + string(rune('a'+i%26)) + string(rune('a'+i/26))
}
