package core

import (
	"bytes"
	"testing"

	"carcs/internal/learn"
	"carcs/internal/workflow"
)

func learnStateBytes(t *testing.T, s *System) []byte {
	t.Helper()
	b, err := s.LearnState().Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestTrainLearnedAndSuggest(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	// Before training: the method is valid but silent, and stats say so.
	if sugg, err := s.Suggest("learned", "pdc12", "openmp speedup", 5); err != nil || sugg != nil {
		t.Fatalf("untrained learned suggest = %v, %v; want nil, nil", sugg, err)
	}
	st := s.LearnStats()
	for _, m := range st.Models {
		if m.Trained {
			t.Fatalf("model %s trained before any train op", m.Ontology)
		}
	}

	gen := s.Generation()
	if err := s.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if s.Generation() <= gen {
		t.Fatal("train did not publish a new generation")
	}
	st = s.LearnStats()
	for _, m := range st.Models {
		if !m.Trained || m.Version != 1 || m.Examples == 0 {
			t.Fatalf("model %s not trained: %+v", m.Ontology, m)
		}
	}
	if st.LastTrainGen == 0 {
		t.Fatal("last-train generation not recorded")
	}

	sugg, err := s.Suggest("learned", "pdc12", "students parallelize a loop with OpenMP and measure speedup", 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(sugg) == 0 {
		t.Fatal("trained learned model suggests nothing")
	}
	for _, sg := range sugg {
		if sg.Score <= 0 || sg.Score >= 1 {
			t.Fatalf("uncalibrated score %v", sg.Score)
		}
	}
	// The ensemble accepts the trained member without erroring.
	if _, err := s.Suggest("ensemble", "cs13", "sorting arrays with loops", 5); err != nil {
		t.Fatal(err)
	}

	// A view pinned before a retrain keeps its model.
	v := s.View()
	before := v.Learned(s.PDC12()).Version()
	if err := s.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if got := v.Learned(s.PDC12()).Version(); got != before {
		t.Fatalf("pinned view's model changed: %d -> %d", before, got)
	}
	if got := s.View().Learned(s.PDC12()).Version(); got != before+1 {
		t.Fatalf("retrain version = %d, want %d", got, before+1)
	}
}

func TestLearnFromReviewUpdatesModel(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	m := testMat("review-me", arrayEntry())
	// Before any train: silent no-op, nothing journaled, nothing changes.
	if err := s.LearnFromReview(m, true); err != nil {
		t.Fatal(err)
	}
	if err := s.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	before := s.View().Learned(s.CS13()).Version()
	if err := s.LearnFromReview(m, true); err != nil {
		t.Fatal(err)
	}
	if got := s.View().Learned(s.CS13()).Version(); got != before+1 {
		t.Fatalf("accept did not bump version: %d -> %d", before, got)
	}
	// Rejections feed negatives and bump too.
	if err := s.LearnFromReview(m, false); err != nil {
		t.Fatal(err)
	}
	if got := s.View().Learned(s.CS13()).Version(); got != before+2 {
		t.Fatalf("reject did not bump version: got %d", got)
	}
	// A material with no in-ontology labels teaches nothing.
	v := s.Generation()
	if err := s.LearnFromReview(testMat("unlabeled"), true); err != nil {
		t.Fatal(err)
	}
	if s.Generation() != v {
		t.Fatal("label-free review published a generation")
	}
}

// TestLearnDurableRoundTrip is the crash-recovery half of the model's
// durability story: train, absorb review updates, crash without a final
// checkpoint, recover — the model must come back byte-identical, whether it
// is rebuilt from the WAL (deterministic retrain + update replay) or, after
// an explicit checkpoint, from the serialized weights.
func TestLearnDurableRoundTrip(t *testing.T) {
	dir := t.TempDir()
	sys, p, err := OpenDurable(dir, DurableOptions{Seed: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddMaterial(testMat("post-train", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := sys.LearnFromReview(testMat("rev-1", arrayEntry()), true); err != nil {
		t.Fatal(err)
	}
	if err := sys.LearnFromReview(testMat("rev-2", arrayEntry()), false); err != nil {
		t.Fatal(err)
	}
	want := learnStateBytes(t, sys)
	wantQueue := reviewQueueIDs(sys)
	abandon(p) // crash: recovery must replay train + updates from the WAL

	sys2, p2, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := learnStateBytes(t, sys2); !bytes.Equal(want, got) {
		t.Fatalf("WAL-replayed model differs from pre-crash model:\n pre: %d bytes\npost: %d bytes", len(want), len(got))
	}

	// Now pin the state in a checkpoint and recover from that path too.
	if err := p2.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	abandon(p2)
	sys3, p3, err := OpenDurable(dir, DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer abandon(p3)
	if got := learnStateBytes(t, sys3); !bytes.Equal(want, got) {
		t.Fatal("checkpoint-restored model differs from pre-crash model")
	}
	if got := reviewQueueIDs(sys3); !equalIDs(wantQueue, got) {
		t.Fatalf("review queue order changed across recovery: %v vs %v", wantQueue, got)
	}
}

func reviewQueueIDs(s *System) []int64 {
	var out []int64
	for _, it := range s.ReviewQueue() {
		out = append(out, it.Submission.ID)
	}
	return out
}

func equalIDs(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestReviewQueueOrdering(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Workflow().Register("alice", workflow.RoleSubmitter); err != nil {
		t.Fatal(err)
	}
	// Cold start: no model, queue is FIFO by submission ID.
	if _, err := s.Workflow().Submit("alice", testMat("sub-b", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Workflow().Submit("alice", testMat("sub-a", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	q := s.ReviewQueue()
	if len(q) != 2 {
		t.Fatalf("queue len %d", len(q))
	}
	if q[0].Submission.ID > q[1].Submission.ID {
		t.Fatal("untrained queue should be FIFO")
	}
	for _, it := range q {
		if it.Uncertainty != 1 {
			t.Fatalf("untrained uncertainty = %v, want 1", it.Uncertainty)
		}
	}

	if err := s.TrainLearned(learn.DefaultParams()); err != nil {
		t.Fatal(err)
	}
	q = s.ReviewQueue()
	if len(q) != 2 {
		t.Fatalf("queue len %d", len(q))
	}
	for i := 1; i < len(q); i++ {
		if q[i-1].Uncertainty < q[i].Uncertainty {
			t.Fatal("queue not sorted by uncertainty desc")
		}
	}
	for _, it := range q {
		if it.Uncertainty < 0 || it.Uncertainty > 1 {
			t.Fatalf("uncertainty out of range: %v", it.Uncertainty)
		}
		if len(it.Suggestions) == 0 {
			t.Fatalf("trained queue item has no machine suggestions: %+v", it)
		}
	}
}
