package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"carcs/internal/relstore"
)

func TestRestoreMissingTables(t *testing.T) {
	// A valid relstore snapshot that simply isn't a CAR-CS database.
	var buf bytes.Buffer
	if err := relstore.NewStore().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(&buf); err == nil || !strings.Contains(err.Error(), "missing CAR-CS tables") {
		t.Fatalf("restore of empty store = %v, want missing-tables error", err)
	}
}

func TestRestoreGarbage(t *testing.T) {
	if _, err := Restore(strings.NewReader("not json at all")); err == nil {
		t.Fatal("restore of garbage succeeded")
	}
}

func TestRestoreDanglingClassificationLink(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddMaterial(testMat("dang-1", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Point the material's classification link at an entry row that does
	// not exist.
	var snap map[string]any
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	links := snap["links"].([]any)
	link := links[0].(map[string]any)
	pairs := link["pairs"].([]any)
	pair := pairs[0].([]any)
	pair[1] = float64(999)
	tampered, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(bytes.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "dangling entry link") {
		t.Fatalf("restore with dangling link = %v, want dangling-link error", err)
	}
}

func TestRestoreInvalidMaterialRow(t *testing.T) {
	s, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AddMaterial(testMat("bad-row", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	// Blank the material's kind so validation fails during reconstruction.
	tampered := bytes.Replace(buf.Bytes(), []byte(`"kind":"assignment"`), []byte(`"kind":"zeppelin"`), 1)
	if bytes.Equal(tampered, buf.Bytes()) {
		t.Fatal("test setup: kind field not found in snapshot")
	}
	if _, err := Restore(bytes.NewReader(tampered)); err == nil || !strings.Contains(err.Error(), "restoring") {
		t.Fatalf("restore with invalid row = %v, want restore error", err)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	// Mix in a post-seed mutation so the round trip covers more than the
	// pristine corpus.
	if err := s.AddMaterial(testMat("rt-extra", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	if err := s.RemoveMaterial(s.Materials("nifty")[0].ID); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := s.Materials("")
	got := r.Materials("")
	if len(got) != len(want) {
		t.Fatalf("restored %d materials, want %d", len(got), len(want))
	}
	for _, wm := range want {
		gm := r.Material(wm.ID)
		if gm == nil {
			t.Errorf("material %s lost in round trip", wm.ID)
			continue
		}
		if gm.Title != wm.Title || gm.Kind != wm.Kind || gm.Level != wm.Level ||
			gm.Collection != wm.Collection || gm.Year != wm.Year ||
			gm.Language != wm.Language || gm.URL != wm.URL ||
			gm.Description != wm.Description {
			t.Errorf("material %s metadata diverged:\n got %+v\nwant %+v", wm.ID, gm, wm)
		}
		if g, w := strings.Join(gm.ClassificationIDs(), ","), strings.Join(wm.ClassificationIDs(), ","); g != w {
			t.Errorf("material %s classifications diverged:\n got %s\nwant %s", wm.ID, g, w)
		}
		if g, w := strings.Join(gm.Authors, "|"), strings.Join(wm.Authors, "|"); g != w {
			t.Errorf("material %s authors diverged: %q vs %q", wm.ID, g, w)
		}
		if g, w := strings.Join(gm.Tags, "|"), strings.Join(wm.Tags, "|"); g != w {
			t.Errorf("material %s tags diverged: %q vs %q", wm.ID, g, w)
		}
		if g, w := strings.Join(gm.Datasets, "|"), strings.Join(wm.Datasets, "|"); g != w {
			t.Errorf("material %s datasets diverged: %q vs %q", wm.ID, g, w)
		}
	}
	// The relational bookkeeping must agree too.
	ws, rs := s.ComputeStats(), r.ComputeStats()
	if ws.Materials != rs.Materials || ws.Links != rs.Links {
		t.Errorf("stats diverged: %+v vs %+v", ws, rs)
	}
	// And a second snapshot of the restored system is byte-identical —
	// snapshotting is deterministic over equal logical state.
	var buf2 bytes.Buffer
	if err := r.Snapshot(&buf2); err != nil {
		t.Fatal(err)
	}
	r2, err := Restore(bytes.NewReader(buf2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var buf3 bytes.Buffer
	if err := r2.Snapshot(&buf3); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), buf3.Bytes()) {
		t.Error("snapshot of restored system is not stable")
	}
}
