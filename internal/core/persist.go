package core

import (
	"fmt"
	"io"

	"carcs/internal/material"
	"carcs/internal/relstore"
)

// Restore rebuilds a System from a Snapshot stream: the relational state is
// restored, then the in-memory materials and the search index are
// reconstructed from the rows and classification links.
func Restore(r io.Reader) (*System, error) {
	store, err := relstore.Restore(r)
	if err != nil {
		return nil, err
	}
	return systemFromStore(store)
}

// systemFromStore rebuilds a fresh System by replaying the materials and
// classification links recorded in a restored relational store.
func systemFromStore(store *relstore.Store) (*System, error) {
	s, err := New()
	if err != nil {
		return nil, err
	}
	mt := store.Table("materials")
	et := store.Table("entries")
	lk := store.Link("material_classifications")
	if mt == nil || et == nil || lk == nil {
		return nil, fmt.Errorf("core: snapshot missing CAR-CS tables")
	}
	for _, row := range mt.Select(relstore.Query{}) {
		m := materialFromRow(row)
		for _, entryRowID := range lk.Rights(row.ID()) {
			er := et.Get(entryRowID)
			if er == nil {
				return nil, fmt.Errorf("core: dangling entry link %d for %q", entryRowID, m.ID)
			}
			node, _ := er["node"].(string)
			m.Classifications = append(m.Classifications, material.Classification{NodeID: node})
		}
		if err := s.AddMaterial(m); err != nil {
			return nil, fmt.Errorf("core: restoring %q: %w", m.ID, err)
		}
	}
	return s, nil
}

func materialFromRow(row relstore.Row) *material.Material {
	str := func(k string) string { v, _ := row[k].(string); return v }
	list := func(k string) []string { v, _ := row[k].([]string); return v }
	year, _ := row["year"].(int64)
	return &material.Material{
		ID:          str("slug"),
		Title:       str("title"),
		Kind:        material.Kind(str("kind")),
		Level:       material.Level(str("level")),
		Language:    str("language"),
		Collection:  str("collection"),
		URL:         str("url"),
		Description: str("description"),
		Year:        int(year),
		Authors:     list("authors"),
		Datasets:    list("datasets"),
		Tags:        list("tags"),
	}
}
