// Package core is the CAR-CS system: a single facade wiring the curriculum
// ontologies, the relational store, the search engine, the classification
// suggesters, the coverage and similarity analyses, and the curation
// workflow into the API the paper's prototype exposes through its web
// service.
//
// A System owns a relational store (the PostgreSQL stand-in) holding the
// materials and their many-to-many links to classification entries, plus an
// incremental search index. All higher-level analyses (Figure 2 coverage
// trees, the Figure 3 similarity graph, gap reports, PDC-replacement
// queries) are computed on demand from that state.
package core

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"

	"carcs/internal/classify"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/relstore"
	"carcs/internal/search"
	"carcs/internal/similarity"
	"carcs/internal/workflow"
)

// System is one CAR-CS instance.
type System struct {
	mu    sync.RWMutex
	cs13  *ontology.Ontology
	pdc12 *ontology.Ontology

	store     *relstore.Store
	materials *relstore.Table
	entries   *relstore.Table
	links     *relstore.LinkTable

	engine *search.Engine
	queue  *workflow.Queue

	keyword *classify.Keyword
	tfidf   *classify.TFIDF

	// hook, when set, journals every mutation before it commits (see
	// MutationHook). Guarded by mu.
	hook MutationHook
}

// MutationHook observes a mutation before it commits. The durability layer
// installs one that appends the operation to the write-ahead log; if the
// hook fails, the mutation is refused, so no accepted write can outlive the
// journal. The hook runs with the system's mutation lock held.
type MutationHook func(op string, payload any) error

// SetMutationHook installs (or, with nil, removes) the mutation hook.
func (s *System) SetMutationHook(h MutationHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

func (s *System) hookLocked(op string, payload any) error {
	if s.hook == nil {
		return nil
	}
	return s.hook(op, payload)
}

// New creates an empty CAR-CS system bound to the CS13 and PDC12 curricula.
func New() (*System, error) {
	s := &System{
		cs13:   ontology.CS13(),
		pdc12:  ontology.PDC12(),
		store:  relstore.NewStore(),
		queue:  workflow.NewQueue(),
		engine: search.NewEngine(ontology.CS13(), ontology.PDC12()),
	}
	var err error
	s.materials, err = s.store.CreateTable(relstore.Schema{
		Name: "materials",
		Columns: []relstore.Column{
			{Name: "slug", Type: relstore.String, Unique: true},
			{Name: "title", Type: relstore.String},
			{Name: "kind", Type: relstore.String, Indexed: true},
			{Name: "level", Type: relstore.String, Indexed: true},
			{Name: "language", Type: relstore.String, Indexed: true},
			{Name: "collection", Type: relstore.String, Indexed: true},
			{Name: "url", Type: relstore.String},
			{Name: "description", Type: relstore.String},
			{Name: "year", Type: relstore.Int, Indexed: true},
			{Name: "authors", Type: relstore.StringList},
			{Name: "datasets", Type: relstore.StringList},
			{Name: "tags", Type: relstore.StringList},
		},
	})
	if err != nil {
		return nil, err
	}
	s.entries, err = s.store.CreateTable(relstore.Schema{
		Name: "entries",
		Columns: []relstore.Column{
			{Name: "node", Type: relstore.String, Unique: true},
			{Name: "bloom", Type: relstore.String},
		},
	})
	if err != nil {
		return nil, err
	}
	s.links, err = s.store.CreateLink("material_classifications", "materials", "entries")
	if err != nil {
		return nil, err
	}
	s.keyword = classify.NewKeyword(s.cs13)
	s.tfidf = classify.NewTFIDF(s.cs13)
	return s, nil
}

// NewSeeded creates a system pre-loaded with the paper's three collections:
// Nifty, Peachy, and ITCS 3145.
func NewSeeded() (*System, error) {
	s, err := New()
	if err != nil {
		return nil, err
	}
	for _, m := range corpus.AllMaterials() {
		if err := s.AddMaterial(m); err != nil {
			return nil, fmt.Errorf("core: seeding %s: %w", m.ID, err)
		}
	}
	return s, nil
}

// CS13 returns the CS13 ontology.
func (s *System) CS13() *ontology.Ontology { return s.cs13 }

// PDC12 returns the PDC12 ontology.
func (s *System) PDC12() *ontology.Ontology { return s.pdc12 }

// OntologyByName resolves "cs13" or "pdc12" (case-insensitive), else nil.
func (s *System) OntologyByName(name string) *ontology.Ontology {
	switch strings.ToLower(name) {
	case "cs13", "cs2013", "acm", "acm-ieee":
		return s.cs13
	case "pdc12", "pdc", "tcpp":
		return s.pdc12
	}
	return nil
}

// Workflow returns the curation queue.
func (s *System) Workflow() *workflow.Queue { return s.queue }

// Store exposes the underlying relational store (read-mostly; mutations
// should go through the System so the search index stays consistent).
func (s *System) Store() *relstore.Store { return s.store }

// AddMaterial validates and stores a material, indexes it for search, and
// records its classification links. Duplicate IDs are rejected. The system
// stores a deep copy, so later edits to the argument (or through other
// systems sharing the same seed corpus) never leak in.
func (s *System) AddMaterial(m *material.Material) error {
	if errs := m.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: invalid material %q: %w", m.ID, errs[0])
	}
	m = m.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.materials.LookupUnique("slug", m.ID) != nil {
		return fmt.Errorf("core: add %q: duplicate material", m.ID)
	}
	if err := s.hookLocked(OpAddMaterial, addMaterialPayload{Material: m}); err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	rowID, err := s.materials.Insert(relstore.Row{
		"slug":        m.ID,
		"title":       m.Title,
		"kind":        string(m.Kind),
		"level":       string(m.Level),
		"language":    m.Language,
		"collection":  m.Collection,
		"url":         m.URL,
		"description": m.Description,
		"year":        int64(m.Year),
		"authors":     append([]string{}, m.Authors...),
		"datasets":    append([]string{}, m.Datasets...),
		"tags":        append([]string{}, m.Tags...),
	})
	if err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	for _, cl := range m.Classifications {
		entryID, err := s.entryRowIDLocked(cl)
		if err != nil {
			return err
		}
		s.links.Add(rowID, entryID)
	}
	s.engine.Add(m)
	return nil
}

func (s *System) entryRowIDLocked(cl material.Classification) (int64, error) {
	if row := s.entries.LookupUnique("node", cl.NodeID); row != nil {
		return row.ID(), nil
	}
	return s.entries.Insert(relstore.Row{
		"node":  cl.NodeID,
		"bloom": cl.Bloom.String(),
	})
}

// RemoveMaterial deletes a material and its links.
func (s *System) RemoveMaterial(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	if err := s.hookLocked(OpRemoveMaterial, removeMaterialPayload{ID: id}); err != nil {
		return fmt.Errorf("core: remove %q: %w", id, err)
	}
	if err := s.materials.Delete(row.ID()); err != nil {
		return err
	}
	s.links.RemoveLeft(row.ID())
	s.engine.Remove(id)
	return nil
}

// Reclassify replaces a material's classification set, the editing flow of
// Fig. 1b.
func (s *System) Reclassify(id string, cls []material.Classification) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.engine.Get(id)
	if m == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	next := *m
	next.Classifications = cls
	if errs := next.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: reclassify %q: %w", id, errs[0])
	}
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: store out of sync for %q", id)
	}
	if err := s.hookLocked(OpReclassify, reclassifyPayload{ID: id, Classifications: cls}); err != nil {
		return fmt.Errorf("core: reclassify %q: %w", id, err)
	}
	s.links.RemoveLeft(row.ID())
	for _, cl := range cls {
		entryID, err := s.entryRowIDLocked(cl)
		if err != nil {
			return err
		}
		s.links.Add(row.ID(), entryID)
	}
	*m = next
	s.engine.Add(m)
	return nil
}

// Material returns the stored material with the given id, or nil.
func (s *System) Material(id string) *material.Material {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Get(id)
}

// Materials returns all stored materials, optionally filtered by collection
// name (empty for all), in insertion order.
func (s *System) Materials(collection string) []*material.Material {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if collection == "" {
		return s.engine.All()
	}
	return s.engine.Select(search.ByCollection(collection))
}

// Collections lists the distinct collection names present, sorted.
func (s *System) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	for _, m := range s.engine.All() {
		seen[m.Collection] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored materials.
func (s *System) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Len()
}

// Engine exposes the search engine for advanced queries.
func (s *System) Engine() *search.Engine { return s.engine }

// Coverage computes the Figure 2 report of a collection (empty for all
// materials) against the named ontology ("cs13" or "pdc12").
func (s *System) Coverage(ontologyName, collection string) (*coverage.Report, error) {
	o := s.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	mats := s.Materials(collection)
	label := collection
	if label == "" {
		label = "all materials"
	}
	return coverage.Compute(o, label, mats), nil
}

// SimilarityGraph builds the Figure 3 bipartite graph between two
// collections with the paper's shared-count metric at the given threshold
// (2 in the paper).
func (s *System) SimilarityGraph(leftCollection, rightCollection string, threshold int) *similarity.Graph {
	left := s.Materials(leftCollection)
	right := s.Materials(rightCollection)
	return similarity.BuildBipartite(left, right, similarity.SharedCount, float64(threshold))
}

// Suggest proposes classification entries for free text against the named
// ontology using the requested method ("keyword" or "tfidf").
func (s *System) Suggest(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	o := s.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	var sg classify.Suggester
	switch method {
	case "", "tfidf":
		if o == s.cs13 {
			sg = s.tfidf
		} else {
			sg = classify.NewTFIDF(o)
		}
	case "keyword":
		if o == s.cs13 {
			sg = s.keyword
		} else {
			sg = classify.NewKeyword(o)
		}
	case "bayes":
		b := classify.NewBayes(o)
		b.TrainAll(s.Materials(""))
		sg = b
	case "ensemble":
		b := classify.NewBayes(o)
		b.TrainAll(s.Materials(""))
		members := []classify.Suggester{b}
		if o == s.cs13 {
			members = append(members, s.keyword, s.tfidf)
		} else {
			members = append(members, classify.NewKeyword(o), classify.NewTFIDF(o))
		}
		sg = classify.NewEnsemble(members...)
	default:
		return nil, fmt.Errorf("core: unknown suggester %q", method)
	}
	return sg.Suggest(text, k), nil
}

// Recommend proposes classification entries commonly used together with the
// already-selected ones, mined from the stored corpus.
func (s *System) Recommend(selected []string, k int) []classify.Rule {
	co := classify.NewCoOccurrence(s.Materials(""))
	return co.Recommend(selected, 2, k)
}

// PDCReplacements is the Sec. IV-D query over the stored corpus.
func (s *System) PDCReplacements(id string, k int) ([]similarity.Edge, error) {
	m := s.Material(id)
	if m == nil {
		return nil, fmt.Errorf("core: no material %q", id)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.PDCReplacements(m, 2, k), nil
}

// Snapshot writes the relational state as JSON.
func (s *System) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Snapshot(w)
}

// Stats summarizes the system for the CLI and the server's status endpoint.
type Stats struct {
	Materials   int
	Collections []string
	Entries     int
	Links       int
	CS13Size    int
	PDC12Size   int
}

// ComputeStats gathers the summary.
func (s *System) ComputeStats() Stats {
	return Stats{
		Materials:   s.Len(),
		Collections: s.Collections(),
		Entries:     s.entries.Len(),
		Links:       s.links.Len(),
		CS13Size:    s.cs13.Len(),
		PDC12Size:   s.pdc12.Len(),
	}
}
