// Package core is the CAR-CS system: a single facade wiring the curriculum
// ontologies, the relational store, the search engine, the classification
// suggesters, the coverage and similarity analyses, and the curation
// workflow into the API the paper's prototype exposes through its web
// service.
//
// The system is split into two halves. The commit pipeline — AddMaterial,
// RemoveMaterial, Reclassify — serializes mutations under a single mutex:
// each journals through the durability hook, applies to the live containers,
// and atomically publishes a new immutable View. The read model — View,
// obtained from System.View() — is a frozen snapshot of every container
// pinned at one generation; reads on it take no locks and never observe a
// concurrent commit. Containers use persistent (copy-on-write) structures,
// so publishing a view costs O(changed rows), not a copy of the data.
package core

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"

	"carcs/internal/cache"
	"carcs/internal/classify"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/learn"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/relstore"
	"carcs/internal/search"
	"carcs/internal/similarity"
	"carcs/internal/textproc"
	"carcs/internal/workflow"
)

// suggesters bundles the training-free engines kept per ontology. Building
// them costs a full pass over the ontology's classifiable entries, so they
// are constructed once at system creation, never per request.
type suggesters struct {
	keyword *classify.Keyword
	tfidf   *classify.TFIDF
}

// System is one CAR-CS instance.
type System struct {
	// mu serializes the commit pipeline: every mutation (material add/
	// remove/reclassify) runs under it end to end. Reads never take it —
	// they go through the published View.
	mu    sync.Mutex
	cs13  *ontology.Ontology
	pdc12 *ontology.Ontology

	store     *relstore.Store
	materials *relstore.Table
	entries   *relstore.Table
	links     *relstore.LinkTable

	engine *search.Engine
	queue  *workflow.Queue

	// sug holds the per-ontology training-free suggestion engines.
	sug map[*ontology.Ontology]suggesters
	// bayes holds one incrementally maintained naive-Bayes model per
	// ontology; cooccur is the incrementally maintained rule miner. All
	// three are updated under mu by every material mutation and snapped
	// into each published view.
	bayes   map[*ontology.Ontology]*classify.Bayes
	cooccur *classify.CoOccurrence

	// learned holds the trained classifier per ontology, nil until the
	// first train op. Models are immutable; train and review updates
	// replace the pointer under mu, and views snap the current pointers.
	learned map[*ontology.Ontology]*learn.Model
	// lastTrainGen is the generation at which the current learned models
	// were installed by a full retrain. Guarded by mu.
	lastTrainGen uint64

	// gen counts committed mutations. Every published view carries the
	// generation it was built at; cached results are keyed by it.
	gen atomic.Uint64
	// pubMu is a leaf lock guarding the (generation bump, view publish)
	// pair so the served generation is monotonic: no reader can observe a
	// generation whose view has not been stored yet. Commits take it with
	// mu held; the workflow observer takes it alone (it runs with the
	// queue's lock held and must never touch mu — see New).
	pubMu sync.Mutex
	// view is the atomically published read model. Never nil after New.
	view atomic.Pointer[View]

	// results memoizes analysis results by (request key, generation).
	results *cache.Cache

	// hook, when set, journals every mutation before it commits (see
	// MutationHook). Guarded by mu.
	hook MutationHook
	// batchHook, when set, journals a whole batch of mutations in one
	// durability round trip (see BatchMutationHook). Guarded by mu.
	batchHook BatchMutationHook

	// limit, when positive, caps the number of stored materials
	// (workspace quota). Enforced only on the public mutation paths —
	// never during WAL replay or replication apply, so a quota lowered
	// after writes were accepted can never wedge recovery. Guarded by mu.
	limit int

	// epochMark is the leadership-epoch high-water mark of applied records.
	// ApplyRecord(s) rejects anything below it, which fences a deposed
	// leader's stream out of this system no matter how the records arrive.
	// Forward-only; see FenceEpoch.
	epochMark atomic.Uint64
}

// FenceEpoch raises the system's epoch high-water mark. Forward-only: a
// value at or below the current mark is ignored, so a late or reordered
// fence can never re-admit a deposed leader's records.
func (s *System) FenceEpoch(epoch uint64) {
	for {
		cur := s.epochMark.Load()
		if epoch <= cur || s.epochMark.CompareAndSwap(cur, epoch) {
			return
		}
	}
}

// EpochMark reports the highest leadership epoch this system has applied or
// been fenced at.
func (s *System) EpochMark() uint64 { return s.epochMark.Load() }

// ErrQuotaExceeded is returned (wrapped) by AddMaterial/AddMaterials when a
// workspace material quota would be exceeded. The server maps it to 429.
var ErrQuotaExceeded = fmt.Errorf("material quota exceeded")

// SetMaterialLimit caps the number of materials this system accepts through
// AddMaterial/AddMaterials; zero or negative removes the cap. Replayed and
// replicated ops bypass the check.
func (s *System) SetMaterialLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.limit = n
}

// MaterialLimit reports the configured material quota (0 = unlimited).
func (s *System) MaterialLimit() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.limit
}

// quotaRoomLocked refuses an addition of n materials that would push the
// stored count past the quota. Callers hold mu.
func (s *System) quotaRoomLocked(n int) error {
	if s.limit > 0 && s.engine.Len()+n > s.limit {
		return fmt.Errorf("%w (limit %d, stored %d, adding %d)", ErrQuotaExceeded, s.limit, s.engine.Len(), n)
	}
	return nil
}

// MutationHook observes a mutation before it commits. The durability layer
// installs one that appends the operation to the write-ahead log; if the
// hook fails, the mutation is refused, so no accepted write can outlive the
// journal. The hook runs with the system's mutation lock held.
type MutationHook func(op string, payload any) error

// OpPayload is one not-yet-journaled operation inside a batch mutation.
type OpPayload struct {
	Op      string
	Payload any
}

// BatchMutationHook journals every operation of a batch mutation before any
// of it commits — the durability layer appends them all with one fsync. Like
// MutationHook it runs with the system's mutation lock held, and a failure
// refuses the whole batch.
type BatchMutationHook func(ops []OpPayload) error

// SetMutationHook installs (or, with nil, removes) the mutation hook.
func (s *System) SetMutationHook(h MutationHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

// SetBatchMutationHook installs (or, with nil, removes) the batch mutation
// hook. Without one, batch mutations fall back to journaling through the
// per-op MutationHook.
func (s *System) SetBatchMutationHook(h BatchMutationHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.batchHook = h
}

func (s *System) hookLocked(op string, payload any) error {
	if s.hook == nil {
		return nil
	}
	return s.hook(op, payload)
}

// batchHookLocked journals a batch of operations: through the batch hook
// when one is installed (one fsync for the whole slice), else op-by-op
// through the per-mutation hook.
func (s *System) batchHookLocked(ops []OpPayload) error {
	if s.batchHook != nil {
		return s.batchHook(ops)
	}
	for _, op := range ops {
		if err := s.hookLocked(op.Op, op.Payload); err != nil {
			return err
		}
	}
	return nil
}

// New creates an empty CAR-CS system bound to the CS13 and PDC12 curricula.
func New() (*System, error) {
	s := &System{
		cs13:   ontology.CS13(),
		pdc12:  ontology.PDC12(),
		store:  relstore.NewStore(),
		queue:  workflow.NewQueue(),
		engine: search.NewEngine(ontology.CS13(), ontology.PDC12()),
	}
	var err error
	s.materials, err = s.store.CreateTable(relstore.Schema{
		Name: "materials",
		Columns: []relstore.Column{
			{Name: "slug", Type: relstore.String, Unique: true},
			{Name: "title", Type: relstore.String},
			{Name: "kind", Type: relstore.String, Indexed: true},
			{Name: "level", Type: relstore.String, Indexed: true},
			{Name: "language", Type: relstore.String, Indexed: true},
			{Name: "collection", Type: relstore.String, Indexed: true},
			{Name: "url", Type: relstore.String},
			{Name: "description", Type: relstore.String},
			{Name: "year", Type: relstore.Int, Indexed: true},
			{Name: "authors", Type: relstore.StringList},
			{Name: "datasets", Type: relstore.StringList},
			{Name: "tags", Type: relstore.StringList},
		},
	})
	if err != nil {
		return nil, err
	}
	s.entries, err = s.store.CreateTable(relstore.Schema{
		Name: "entries",
		Columns: []relstore.Column{
			{Name: "node", Type: relstore.String, Unique: true},
			{Name: "bloom", Type: relstore.String},
		},
	})
	if err != nil {
		return nil, err
	}
	s.links, err = s.store.CreateLink("material_classifications", "materials", "entries")
	if err != nil {
		return nil, err
	}
	// The training-free suggesters are immutable once built and the
	// ontologies are process-wide singletons, so every System shares one
	// instance per ontology instead of re-tokenizing the whole curriculum
	// on each construction (which dominated cold-start profiles).
	s.sug = map[*ontology.Ontology]suggesters{
		s.cs13:  {keyword: classify.SharedKeyword(s.cs13), tfidf: classify.SharedTFIDF(s.cs13)},
		s.pdc12: {keyword: classify.SharedKeyword(s.pdc12), tfidf: classify.SharedTFIDF(s.pdc12)},
	}
	s.bayes = map[*ontology.Ontology]*classify.Bayes{
		s.cs13:  classify.NewBayes(s.cs13),
		s.pdc12: classify.NewBayes(s.pdc12),
	}
	s.learned = map[*ontology.Ontology]*learn.Model{}
	s.cooccur = classify.NewCoOccurrence(nil)
	s.results = cache.New(0)
	// Publish the empty initial view before the workflow observer can fire.
	s.view.Store(s.buildViewLocked(0))
	// Workflow transitions are mutations too: a submission moving through
	// review changes what the curation endpoints report, so they advance
	// the generation. The observer runs with the queue's lock held, so it
	// must not take mu (the checkpoint path locks mu before freezing the
	// queue); containers are untouched by workflow transitions, so it
	// republishes the last view under the new generation via pubMu alone.
	s.queue.SetObserver(func() {
		s.pubMu.Lock()
		defer s.pubMu.Unlock()
		gen := s.gen.Add(1)
		nv := *s.view.Load()
		nv.gen = gen
		s.view.Store(&nv)
	})
	return s, nil
}

// buildViewLocked assembles a view of the current containers at the given
// generation. Callers hold mu (or, in New, have exclusive access).
func (s *System) buildViewLocked(gen uint64) *View {
	bayes := make(map[*ontology.Ontology]*classify.Bayes, len(s.bayes))
	for o, b := range s.bayes {
		bayes[o] = b.Snap()
	}
	// Learned models are immutable; snapping is copying the pointers.
	learned := make(map[*ontology.Ontology]*learn.Model, len(s.learned))
	for o, m := range s.learned {
		learned[o] = m
	}
	return &View{
		sys:     s,
		gen:     gen,
		eng:     s.engine.Snap(),
		store:   s.store.Snap(),
		bayes:   bayes,
		learned: learned,
		cooccur: s.cooccur.Snap(),
	}
}

// publishLocked bumps the generation and atomically publishes a fresh view
// of the just-mutated containers. Callers hold mu; the generation bump and
// the view store happen together under pubMu so the served generation is
// monotonic.
func (s *System) publishLocked() {
	s.pubMu.Lock()
	defer s.pubMu.Unlock()
	s.view.Store(s.buildViewLocked(s.gen.Add(1)))
}

// View returns the current published read model. The returned View is
// immutable and pinned at one generation: every read on it is lock-free and
// mutually consistent, no matter how many commits land afterwards. Callers
// that make several related reads should resolve one View and use it for
// all of them.
func (s *System) View() *View { return s.view.Load() }

// Generation returns the generation of the current published view. It
// increases monotonically on every committed mutation (material add/remove/
// reclassify, workflow transition) and is the cache-invalidation key for
// every memoized analysis — and the value served as the HTTP ETag.
func (s *System) Generation() uint64 { return s.View().Gen() }

// ResultCache exposes the generation-keyed result cache so other layers
// (the server's SVG rendering, for instance) can memoize derived artifacts
// under the same invalidation discipline.
func (s *System) ResultCache() *cache.Cache { return s.results }

// CacheStats reports result-cache effectiveness for /api/health.
func (s *System) CacheStats() cache.Stats { return s.results.Stats() }

// observeLocked folds a newly committed material into the incrementally
// maintained models. The caller passes the material's already-analyzed
// search terms so the per-ontology models need not re-tokenize. Callers
// hold mu and publish once per mutation after all model updates.
func (s *System) observeLocked(m *material.Material, terms []string) {
	for _, b := range s.bayes {
		b.ObserveTerms(m, terms)
	}
	s.cooccur.Observe(m)
}

// forgetLocked removes a previously committed material from the maintained
// models. Callers hold mu and must pass the exact stored value.
func (s *System) forgetLocked(m *material.Material) {
	for _, b := range s.bayes {
		b.Forget(m)
	}
	s.cooccur.Forget(m)
}

// NewSeeded creates a system pre-loaded with the paper's three collections:
// Nifty, Peachy, and ITCS 3145.
func NewSeeded() (*System, error) {
	s, err := New()
	if err != nil {
		return nil, err
	}
	for _, m := range corpus.AllMaterials() {
		if err := s.AddMaterial(m); err != nil {
			return nil, fmt.Errorf("core: seeding %s: %w", m.ID, err)
		}
	}
	return s, nil
}

// CS13 returns the CS13 ontology.
func (s *System) CS13() *ontology.Ontology { return s.cs13 }

// PDC12 returns the PDC12 ontology.
func (s *System) PDC12() *ontology.Ontology { return s.pdc12 }

// OntologyByName resolves "cs13" or "pdc12" (case-insensitive), else nil.
func (s *System) OntologyByName(name string) *ontology.Ontology {
	switch strings.ToLower(name) {
	case "cs13", "cs2013", "acm", "acm-ieee":
		return s.cs13
	case "pdc12", "pdc", "tcpp":
		return s.pdc12
	}
	return nil
}

// Workflow returns the curation queue.
func (s *System) Workflow() *workflow.Queue { return s.queue }

// Store exposes the underlying live relational store (read-mostly;
// mutations should go through the System so the search index stays
// consistent). Readers that need a stable picture should use View().Store.
func (s *System) Store() *relstore.Store { return s.store }

// AddMaterial validates and stores a material, indexes it for search,
// records its classification links, and publishes a new view. Duplicate IDs
// are rejected. The system stores a deep copy, so later edits to the
// argument (or through other systems sharing the same seed corpus) never
// leak in.
func (s *System) AddMaterial(m *material.Material) error {
	if errs := m.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: invalid material %q: %w", m.ID, errs[0])
	}
	m = m.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, taken := s.materials.UniqueID("slug", m.ID); taken {
		return fmt.Errorf("core: add %q: duplicate material", m.ID)
	}
	if err := s.quotaRoomLocked(1); err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	if err := s.hookLocked(OpAddMaterial, addMaterialPayload{Material: m}); err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	if err := s.applyAddLocked(m); err != nil {
		return err
	}
	s.publishLocked()
	return nil
}

// materialRow maps a material onto its relational row.
func materialRow(m *material.Material) relstore.Row {
	return relstore.Row{
		"slug":        m.ID,
		"title":       m.Title,
		"kind":        string(m.Kind),
		"level":       string(m.Level),
		"language":    m.Language,
		"collection":  m.Collection,
		"url":         m.URL,
		"description": m.Description,
		"year":        int64(m.Year),
		"authors":     append([]string{}, m.Authors...),
		"datasets":    append([]string{}, m.Datasets...),
		"tags":        append([]string{}, m.Tags...),
	}
}

// applyAddLocked commits one already-validated, already-journaled material
// to the live containers — row, classification links, search index, and
// incremental models — without publishing. The search text is analyzed once
// here and shared by every term-keyed structure. Callers hold mu and
// publish once after all applies in the batch.
func (s *System) applyAddLocked(m *material.Material) error {
	rowID, err := s.materials.Insert(materialRow(m))
	if err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	for _, cl := range m.Classifications {
		entryID, err := s.entryRowIDLocked(cl)
		if err != nil {
			return err
		}
		s.links.Add(rowID, entryID)
	}
	terms := textproc.Terms(m.SearchText())
	s.engine.AddTerms(m, terms)
	s.observeLocked(m, terms)
	return nil
}

func (s *System) entryRowIDLocked(cl material.Classification) (int64, error) {
	if id, ok := s.entries.UniqueID("node", cl.NodeID); ok {
		return id, nil
	}
	return s.entries.Insert(relstore.Row{
		"node":  cl.NodeID,
		"bloom": cl.Bloom.String(),
	})
}

// RemoveMaterial deletes a material and its links, and publishes a new view.
func (s *System) RemoveMaterial(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	if err := s.hookLocked(OpRemoveMaterial, removeMaterialPayload{ID: id}); err != nil {
		return fmt.Errorf("core: remove %q: %w", id, err)
	}
	if err := s.applyRemoveLocked(id, row.ID()); err != nil {
		return err
	}
	s.publishLocked()
	return nil
}

// addMaterialLocked is AddMaterial without the hook, lock, or publish: the
// validate-check-apply core that recovery and replication batch-apply share.
func (s *System) addMaterialLocked(m *material.Material) error {
	if errs := m.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: invalid material %q: %w", m.ID, errs[0])
	}
	m = m.Clone()
	if _, taken := s.materials.UniqueID("slug", m.ID); taken {
		return fmt.Errorf("core: add %q: duplicate material", m.ID)
	}
	return s.applyAddLocked(m)
}

// removeMaterialLocked is RemoveMaterial without the hook, lock, or publish.
func (s *System) removeMaterialLocked(id string) error {
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	return s.applyRemoveLocked(id, row.ID())
}

// reclassifyLocked is Reclassify without the hook, lock, or publish.
func (s *System) reclassifyLocked(id string, cls []material.Classification) error {
	m := s.engine.Get(id)
	if m == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	next := m.Clone()
	next.Classifications = append([]material.Classification(nil), cls...)
	if errs := next.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: reclassify %q: %w", id, errs[0])
	}
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: store out of sync for %q", id)
	}
	return s.applyReclassifyLocked(m, next, row.ID(), cls)
}

// applyRemoveLocked commits an already-journaled removal without publishing.
func (s *System) applyRemoveLocked(id string, rowID int64) error {
	if err := s.materials.Delete(rowID); err != nil {
		return err
	}
	s.links.RemoveLeft(rowID)
	if m := s.engine.Get(id); m != nil {
		s.forgetLocked(m)
	}
	s.engine.Remove(id)
	return nil
}

// Reclassify replaces a material's classification set, the editing flow of
// Fig. 1b. The stored material is replaced copy-on-write — the previous
// value is never mutated in place — so views pinned at older generations
// stay internally consistent; they are superseded by the published view,
// never mutated under their feet.
func (s *System) Reclassify(id string, cls []material.Classification) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.engine.Get(id)
	if m == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	next := m.Clone()
	next.Classifications = append([]material.Classification(nil), cls...)
	if errs := next.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: reclassify %q: %w", id, errs[0])
	}
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: store out of sync for %q", id)
	}
	if err := s.hookLocked(OpReclassify, reclassifyPayload{ID: id, Classifications: cls}); err != nil {
		return fmt.Errorf("core: reclassify %q: %w", id, err)
	}
	if err := s.applyReclassifyLocked(m, next, row.ID(), cls); err != nil {
		return err
	}
	s.publishLocked()
	return nil
}

// applyReclassifyLocked commits an already-validated, already-journaled
// reclassification without publishing.
func (s *System) applyReclassifyLocked(prev, next *material.Material, rowID int64, cls []material.Classification) error {
	s.links.RemoveLeft(rowID)
	for _, cl := range cls {
		entryID, err := s.entryRowIDLocked(cl)
		if err != nil {
			return err
		}
		s.links.Add(rowID, entryID)
	}
	s.forgetLocked(prev)
	terms := textproc.Terms(next.SearchText())
	s.engine.AddTerms(next, terms)
	s.observeLocked(next, terms)
	return nil
}

// The methods below are conveniences that resolve the current view and
// answer from it. Callers making several related reads should resolve one
// View themselves so all reads pin the same generation.

// Material returns the stored material with the given id, or nil.
func (s *System) Material(id string) *material.Material { return s.View().Material(id) }

// Materials returns all stored materials, optionally filtered by collection
// name (empty for all), in insertion order.
func (s *System) Materials(collection string) []*material.Material {
	return s.View().Materials(collection)
}

// Collections lists the distinct collection names present, sorted.
func (s *System) Collections() []string { return s.View().Collections() }

// Len returns the number of stored materials.
func (s *System) Len() int { return s.View().Len() }

// ontologyKey returns the canonical cache-key name of one of the system's
// ontologies, so "acm" and "cs2013" share cache entries with "cs13".
func (s *System) ontologyKey(o *ontology.Ontology) string {
	if o == s.cs13 {
		return "cs13"
	}
	return "pdc12"
}

// Coverage computes the Figure 2 report through the current view.
func (s *System) Coverage(ontologyName, collection string) (*coverage.Report, error) {
	return s.View().Coverage(ontologyName, collection)
}

// DepthReport computes the Bloom-level depth report through the current view.
func (s *System) DepthReport(ontologyName, collection string) (*coverage.DepthReport, error) {
	return s.View().DepthReport(ontologyName, collection)
}

// GapReport returns the uncovered-subtree analysis through the current view.
func (s *System) GapReport(ontologyName, collection string, coreOnly bool) ([]coverage.Gap, error) {
	return s.View().GapReport(ontologyName, collection, coreOnly)
}

// SimilarityGraph builds the Figure 3 graph through the current view.
func (s *System) SimilarityGraph(leftCollection, rightCollection string, threshold int) *similarity.Graph {
	return s.View().SimilarityGraph(leftCollection, rightCollection, threshold)
}

// Suggest proposes classification entries through the current view.
func (s *System) Suggest(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	return s.View().Suggest(method, ontologyName, text, k)
}

// SuggestDirect computes suggestions through the current view without
// consulting or filling the result cache.
func (s *System) SuggestDirect(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	return s.View().SuggestDirect(method, ontologyName, text, k)
}

// Recommend proposes co-occurring classification entries through the
// current view.
func (s *System) Recommend(selected []string, k int) []classify.Rule {
	return s.View().Recommend(selected, k)
}

// PDCReplacements is the Sec. IV-D query through the current view.
func (s *System) PDCReplacements(id string, k int) ([]similarity.Edge, error) {
	return s.View().PDCReplacements(id, k)
}

// Snapshot writes the relational state of the current view as JSON.
func (s *System) Snapshot(w io.Writer) error { return s.View().Snapshot(w) }

// Stats summarizes the system for the CLI and the server's status endpoint.
type Stats struct {
	Materials   int
	Collections []string
	Entries     int
	Links       int
	CS13Size    int
	PDC12Size   int
}

// ComputeStats gathers the summary from the current view.
func (s *System) ComputeStats() Stats { return s.View().Stats() }
