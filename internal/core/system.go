// Package core is the CAR-CS system: a single facade wiring the curriculum
// ontologies, the relational store, the search engine, the classification
// suggesters, the coverage and similarity analyses, and the curation
// workflow into the API the paper's prototype exposes through its web
// service.
//
// A System owns a relational store (the PostgreSQL stand-in) holding the
// materials and their many-to-many links to classification entries, plus an
// incremental search index. All higher-level analyses (Figure 2 coverage
// trees, the Figure 3 similarity graph, gap reports, PDC-replacement
// queries) are computed on demand from that state.
package core

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"carcs/internal/cache"
	"carcs/internal/classify"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/relstore"
	"carcs/internal/search"
	"carcs/internal/similarity"
	"carcs/internal/workflow"
)

// suggesters bundles the training-free engines kept per ontology. Building
// them costs a full pass over the ontology's classifiable entries, so they
// are constructed once at system creation, never per request.
type suggesters struct {
	keyword *classify.Keyword
	tfidf   *classify.TFIDF
}

// System is one CAR-CS instance.
type System struct {
	mu    sync.RWMutex
	cs13  *ontology.Ontology
	pdc12 *ontology.Ontology

	store     *relstore.Store
	materials *relstore.Table
	entries   *relstore.Table
	links     *relstore.LinkTable

	engine *search.Engine
	queue  *workflow.Queue

	// sug holds the per-ontology training-free suggestion engines.
	sug map[*ontology.Ontology]suggesters
	// bayes holds one incrementally maintained naive-Bayes model per
	// ontology; cooccur is the incrementally maintained rule miner. All
	// three are updated under mu by every material mutation, so Suggest
	// and Recommend never retrain from the corpus.
	bayes   map[*ontology.Ontology]*classify.Bayes
	cooccur *classify.CoOccurrence

	// gen counts committed mutations. Every read path keys its cached
	// results by the generation it observed; bumping it is what
	// invalidates them. Reads are lock-free; bumps happen with mu held.
	gen atomic.Uint64
	// results memoizes analysis results by (request key, generation).
	results *cache.Cache

	// hook, when set, journals every mutation before it commits (see
	// MutationHook). Guarded by mu.
	hook MutationHook
}

// MutationHook observes a mutation before it commits. The durability layer
// installs one that appends the operation to the write-ahead log; if the
// hook fails, the mutation is refused, so no accepted write can outlive the
// journal. The hook runs with the system's mutation lock held.
type MutationHook func(op string, payload any) error

// SetMutationHook installs (or, with nil, removes) the mutation hook.
func (s *System) SetMutationHook(h MutationHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.hook = h
}

func (s *System) hookLocked(op string, payload any) error {
	if s.hook == nil {
		return nil
	}
	return s.hook(op, payload)
}

// New creates an empty CAR-CS system bound to the CS13 and PDC12 curricula.
func New() (*System, error) {
	s := &System{
		cs13:   ontology.CS13(),
		pdc12:  ontology.PDC12(),
		store:  relstore.NewStore(),
		queue:  workflow.NewQueue(),
		engine: search.NewEngine(ontology.CS13(), ontology.PDC12()),
	}
	var err error
	s.materials, err = s.store.CreateTable(relstore.Schema{
		Name: "materials",
		Columns: []relstore.Column{
			{Name: "slug", Type: relstore.String, Unique: true},
			{Name: "title", Type: relstore.String},
			{Name: "kind", Type: relstore.String, Indexed: true},
			{Name: "level", Type: relstore.String, Indexed: true},
			{Name: "language", Type: relstore.String, Indexed: true},
			{Name: "collection", Type: relstore.String, Indexed: true},
			{Name: "url", Type: relstore.String},
			{Name: "description", Type: relstore.String},
			{Name: "year", Type: relstore.Int, Indexed: true},
			{Name: "authors", Type: relstore.StringList},
			{Name: "datasets", Type: relstore.StringList},
			{Name: "tags", Type: relstore.StringList},
		},
	})
	if err != nil {
		return nil, err
	}
	s.entries, err = s.store.CreateTable(relstore.Schema{
		Name: "entries",
		Columns: []relstore.Column{
			{Name: "node", Type: relstore.String, Unique: true},
			{Name: "bloom", Type: relstore.String},
		},
	})
	if err != nil {
		return nil, err
	}
	s.links, err = s.store.CreateLink("material_classifications", "materials", "entries")
	if err != nil {
		return nil, err
	}
	s.sug = map[*ontology.Ontology]suggesters{
		s.cs13:  {keyword: classify.NewKeyword(s.cs13), tfidf: classify.NewTFIDF(s.cs13)},
		s.pdc12: {keyword: classify.NewKeyword(s.pdc12), tfidf: classify.NewTFIDF(s.pdc12)},
	}
	s.bayes = map[*ontology.Ontology]*classify.Bayes{
		s.cs13:  classify.NewBayes(s.cs13),
		s.pdc12: classify.NewBayes(s.pdc12),
	}
	s.cooccur = classify.NewCoOccurrence(nil)
	s.results = cache.New(0)
	// Workflow transitions are mutations too: a submission moving through
	// review changes what the curation endpoints report, so they join the
	// material mutations in advancing the generation.
	s.queue.SetObserver(func() { s.gen.Add(1) })
	return s, nil
}

// Generation returns the current mutation generation. It increases
// monotonically on every committed mutation (material add/remove/
// reclassify, workflow transition) and is the cache-invalidation key for
// every memoized analysis — and the value served as the HTTP ETag.
func (s *System) Generation() uint64 { return s.gen.Load() }

// ResultCache exposes the generation-keyed result cache so other layers
// (the server's SVG rendering, for instance) can memoize derived artifacts
// under the same invalidation discipline.
func (s *System) ResultCache() *cache.Cache { return s.results }

// CacheStats reports result-cache effectiveness for /api/health.
func (s *System) CacheStats() cache.Stats { return s.results.Stats() }

// observeLocked folds a newly committed material into the incrementally
// maintained models. Callers hold mu and bump the generation once per
// mutation after all model updates.
func (s *System) observeLocked(m *material.Material) {
	for _, b := range s.bayes {
		b.Observe(m)
	}
	s.cooccur.Observe(m)
}

// forgetLocked removes a previously committed material from the maintained
// models. Callers hold mu and must pass the exact stored value.
func (s *System) forgetLocked(m *material.Material) {
	for _, b := range s.bayes {
		b.Forget(m)
	}
	s.cooccur.Forget(m)
}

// NewSeeded creates a system pre-loaded with the paper's three collections:
// Nifty, Peachy, and ITCS 3145.
func NewSeeded() (*System, error) {
	s, err := New()
	if err != nil {
		return nil, err
	}
	for _, m := range corpus.AllMaterials() {
		if err := s.AddMaterial(m); err != nil {
			return nil, fmt.Errorf("core: seeding %s: %w", m.ID, err)
		}
	}
	return s, nil
}

// CS13 returns the CS13 ontology.
func (s *System) CS13() *ontology.Ontology { return s.cs13 }

// PDC12 returns the PDC12 ontology.
func (s *System) PDC12() *ontology.Ontology { return s.pdc12 }

// OntologyByName resolves "cs13" or "pdc12" (case-insensitive), else nil.
func (s *System) OntologyByName(name string) *ontology.Ontology {
	switch strings.ToLower(name) {
	case "cs13", "cs2013", "acm", "acm-ieee":
		return s.cs13
	case "pdc12", "pdc", "tcpp":
		return s.pdc12
	}
	return nil
}

// Workflow returns the curation queue.
func (s *System) Workflow() *workflow.Queue { return s.queue }

// Store exposes the underlying relational store (read-mostly; mutations
// should go through the System so the search index stays consistent).
func (s *System) Store() *relstore.Store { return s.store }

// AddMaterial validates and stores a material, indexes it for search, and
// records its classification links. Duplicate IDs are rejected. The system
// stores a deep copy, so later edits to the argument (or through other
// systems sharing the same seed corpus) never leak in.
func (s *System) AddMaterial(m *material.Material) error {
	if errs := m.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: invalid material %q: %w", m.ID, errs[0])
	}
	m = m.Clone()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.materials.LookupUnique("slug", m.ID) != nil {
		return fmt.Errorf("core: add %q: duplicate material", m.ID)
	}
	if err := s.hookLocked(OpAddMaterial, addMaterialPayload{Material: m}); err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	rowID, err := s.materials.Insert(relstore.Row{
		"slug":        m.ID,
		"title":       m.Title,
		"kind":        string(m.Kind),
		"level":       string(m.Level),
		"language":    m.Language,
		"collection":  m.Collection,
		"url":         m.URL,
		"description": m.Description,
		"year":        int64(m.Year),
		"authors":     append([]string{}, m.Authors...),
		"datasets":    append([]string{}, m.Datasets...),
		"tags":        append([]string{}, m.Tags...),
	})
	if err != nil {
		return fmt.Errorf("core: add %q: %w", m.ID, err)
	}
	for _, cl := range m.Classifications {
		entryID, err := s.entryRowIDLocked(cl)
		if err != nil {
			return err
		}
		s.links.Add(rowID, entryID)
	}
	s.engine.Add(m)
	s.observeLocked(m)
	s.gen.Add(1)
	return nil
}

func (s *System) entryRowIDLocked(cl material.Classification) (int64, error) {
	if row := s.entries.LookupUnique("node", cl.NodeID); row != nil {
		return row.ID(), nil
	}
	return s.entries.Insert(relstore.Row{
		"node":  cl.NodeID,
		"bloom": cl.Bloom.String(),
	})
}

// RemoveMaterial deletes a material and its links.
func (s *System) RemoveMaterial(id string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	if err := s.hookLocked(OpRemoveMaterial, removeMaterialPayload{ID: id}); err != nil {
		return fmt.Errorf("core: remove %q: %w", id, err)
	}
	if err := s.materials.Delete(row.ID()); err != nil {
		return err
	}
	s.links.RemoveLeft(row.ID())
	if m := s.engine.Get(id); m != nil {
		s.forgetLocked(m)
	}
	s.engine.Remove(id)
	s.gen.Add(1)
	return nil
}

// Reclassify replaces a material's classification set, the editing flow of
// Fig. 1b. The stored material is replaced copy-on-write — the previous
// value is never mutated in place — so cached analyses and concurrent
// readers holding the old snapshot stay internally consistent; they are
// invalidated by the generation bump, not by mutation under their feet.
func (s *System) Reclassify(id string, cls []material.Classification) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.engine.Get(id)
	if m == nil {
		return fmt.Errorf("core: no material %q", id)
	}
	next := m.Clone()
	next.Classifications = append([]material.Classification(nil), cls...)
	if errs := next.Validate(s.cs13, s.pdc12); len(errs) > 0 {
		return fmt.Errorf("core: reclassify %q: %w", id, errs[0])
	}
	row := s.materials.LookupUnique("slug", id)
	if row == nil {
		return fmt.Errorf("core: store out of sync for %q", id)
	}
	if err := s.hookLocked(OpReclassify, reclassifyPayload{ID: id, Classifications: cls}); err != nil {
		return fmt.Errorf("core: reclassify %q: %w", id, err)
	}
	s.links.RemoveLeft(row.ID())
	for _, cl := range cls {
		entryID, err := s.entryRowIDLocked(cl)
		if err != nil {
			return err
		}
		s.links.Add(row.ID(), entryID)
	}
	s.forgetLocked(m)
	s.engine.Add(next)
	s.observeLocked(next)
	s.gen.Add(1)
	return nil
}

// Material returns the stored material with the given id, or nil.
func (s *System) Material(id string) *material.Material {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Get(id)
}

// Materials returns all stored materials, optionally filtered by collection
// name (empty for all), in insertion order.
func (s *System) Materials(collection string) []*material.Material {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if collection == "" {
		return s.engine.All()
	}
	return s.engine.Select(search.ByCollection(collection))
}

// Collections lists the distinct collection names present, sorted.
func (s *System) Collections() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	seen := make(map[string]bool)
	for _, m := range s.engine.All() {
		seen[m.Collection] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Len returns the number of stored materials.
func (s *System) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Len()
}

// Engine exposes the search engine for advanced queries. The engine is not
// internally synchronized: callers that may run concurrently with mutations
// (the HTTP handlers) must use the locked wrappers below instead.
func (s *System) Engine() *search.Engine { return s.engine }

// Select runs a filtered scan under the read lock, safe against concurrent
// mutations (e.g. a background bulk import committing materials).
func (s *System) Select(f search.Filter) []*material.Material {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Select(f)
}

// SearchText is the locked form of Engine().TextCorrected: ranked free-text
// search with spell correction.
func (s *System) SearchText(query string, k int, filters ...search.Filter) ([]search.Hit, string) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.TextCorrected(query, k, filters...)
}

// SearchQuery is the locked form of Engine().Query: the structured query
// mini-language.
func (s *System) SearchQuery(q string, k int) ([]search.Hit, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.engine.Query(q, k)
}

// ontologyKey returns the canonical cache-key name of one of the system's
// ontologies, so "acm" and "cs2013" share cache entries with "cs13".
func (s *System) ontologyKey(o *ontology.Ontology) string {
	if o == s.cs13 {
		return "cs13"
	}
	return "pdc12"
}

// Coverage computes the Figure 2 report of a collection (empty for all
// materials) against the named ontology ("cs13" or "pdc12"). Reports are
// memoized per generation: repeated queries between mutations are served
// from the cache.
func (s *System) Coverage(ontologyName, collection string) (*coverage.Report, error) {
	o := s.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	key := cache.Key("coverage", s.ontologyKey(o), collection)
	v, err := s.results.Do(key, s.gen.Load(), func() (any, error) {
		mats := s.Materials(collection)
		label := collection
		if label == "" {
			label = "all materials"
		}
		return coverage.Compute(o, label, mats), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*coverage.Report), nil
}

// DepthReport computes the Bloom-level depth report (the Sec. IV-A proposed
// extension), memoized per generation.
func (s *System) DepthReport(ontologyName, collection string) (*coverage.DepthReport, error) {
	o := s.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	key := cache.Key("depth", s.ontologyKey(o), collection)
	v, err := s.results.Do(key, s.gen.Load(), func() (any, error) {
		return coverage.ComputeDepth(o, s.Materials(collection)), nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*coverage.DepthReport), nil
}

// GapReport returns the uncovered-subtree analysis of a collection against
// an ontology, optionally restricted to core-tier gaps, memoized per
// generation on top of the (also memoized) coverage report.
func (s *System) GapReport(ontologyName, collection string, coreOnly bool) ([]coverage.Gap, error) {
	rep, err := s.Coverage(ontologyName, collection)
	if err != nil {
		return nil, err
	}
	key := cache.Key("gaps", s.ontologyKey(rep.Ontology), collection, strconv.FormatBool(coreOnly))
	v, err := s.results.Do(key, s.gen.Load(), func() (any, error) {
		if coreOnly {
			return rep.CoreGaps(rep.Ontology.RootID()), nil
		}
		return rep.Gaps(rep.Ontology.RootID()), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]coverage.Gap), nil
}

// SimilarityGraph builds the Figure 3 bipartite graph between two
// collections with the paper's shared-count metric at the given threshold
// (2 in the paper). Graphs are memoized per generation.
func (s *System) SimilarityGraph(leftCollection, rightCollection string, threshold int) *similarity.Graph {
	key := cache.Key("similarity", leftCollection, rightCollection, strconv.Itoa(threshold))
	v, _ := s.results.Do(key, s.gen.Load(), func() (any, error) {
		left := s.Materials(leftCollection)
		right := s.Materials(rightCollection)
		return similarity.BuildBipartite(left, right, similarity.SharedCount, float64(threshold)), nil
	})
	return v.(*similarity.Graph)
}

// Suggest proposes classification entries for free text against the named
// ontology using the requested method ("keyword", "tfidf", "bayes", or
// "ensemble"). All methods run on engines the system maintains
// incrementally — the training-free engines are built once per ontology at
// construction, and the Bayes model absorbs each mutation as it commits —
// so no request ever retrains over the corpus. Results are additionally
// memoized per (query, generation).
func (s *System) Suggest(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	o := s.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	switch method {
	case "", "tfidf", "keyword", "bayes", "ensemble":
	default:
		return nil, fmt.Errorf("core: unknown suggester %q", method)
	}
	key := cache.Key("suggest", method, s.ontologyKey(o), strconv.Itoa(k), text)
	v, err := s.results.Do(key, s.gen.Load(), func() (any, error) {
		return s.suggest(method, o, text, k), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]classify.Suggestion), nil
}

// SuggestDirect computes suggestions without consulting or filling the
// result cache. Bulk pipelines (the ingest auto-classifier) use it: their
// queries never repeat, and each of their own commits bumps the generation,
// so caching the results would only pile up dead entries.
func (s *System) SuggestDirect(method, ontologyName, text string, k int) ([]classify.Suggestion, error) {
	o := s.OntologyByName(ontologyName)
	if o == nil {
		return nil, fmt.Errorf("core: unknown ontology %q", ontologyName)
	}
	switch method {
	case "", "tfidf", "keyword", "bayes", "ensemble":
	default:
		return nil, fmt.Errorf("core: unknown suggester %q", method)
	}
	return s.suggest(method, o, text, k), nil
}

func (s *System) suggest(method string, o *ontology.Ontology, text string, k int) []classify.Suggestion {
	switch method {
	case "", "tfidf":
		return s.sug[o].tfidf.Suggest(text, k)
	case "keyword":
		return s.sug[o].keyword.Suggest(text, k)
	case "bayes":
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.bayes[o].Suggest(text, k)
	default: // ensemble
		s.mu.RLock()
		defer s.mu.RUnlock()
		ens := classify.NewEnsemble(s.bayes[o], s.sug[o].keyword, s.sug[o].tfidf)
		return ens.Suggest(text, k)
	}
}

// Recommend proposes classification entries commonly used together with the
// already-selected ones, from association rules the system mines
// incrementally as materials are added — no per-request corpus rescan.
// Results are memoized per (selection, generation).
func (s *System) Recommend(selected []string, k int) []classify.Rule {
	key := cache.Key(append([]string{"recommend", strconv.Itoa(k)}, selected...)...)
	v, _ := s.results.Do(key, s.gen.Load(), func() (any, error) {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.cooccur.Recommend(selected, 2, k), nil
	})
	return v.([]classify.Rule)
}

// PDCReplacements is the Sec. IV-D query over the stored corpus, memoized
// per generation.
func (s *System) PDCReplacements(id string, k int) ([]similarity.Edge, error) {
	key := cache.Key("replacements", id, strconv.Itoa(k))
	v, err := s.results.Do(key, s.gen.Load(), func() (any, error) {
		m := s.Material(id)
		if m == nil {
			return nil, fmt.Errorf("core: no material %q", id)
		}
		s.mu.RLock()
		defer s.mu.RUnlock()
		return s.engine.PDCReplacements(m, 2, k), nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]similarity.Edge), nil
}

// Snapshot writes the relational state as JSON.
func (s *System) Snapshot(w io.Writer) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Snapshot(w)
}

// Stats summarizes the system for the CLI and the server's status endpoint.
type Stats struct {
	Materials   int
	Collections []string
	Entries     int
	Links       int
	CS13Size    int
	PDC12Size   int
}

// ComputeStats gathers the summary.
func (s *System) ComputeStats() Stats {
	return Stats{
		Materials:   s.Len(),
		Collections: s.Collections(),
		Entries:     s.entries.Len(),
		Links:       s.links.Len(),
		CS13Size:    s.cs13.Len(),
		PDC12Size:   s.pdc12.Len(),
	}
}
