package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"carcs/internal/material"
)

// TestViewPinsGeneration is the snapshot-isolation contract: a view resolved
// before a mutation keeps serving the pre-mutation state in full — counts,
// lookups, search, coverage — while a view resolved after sees the commit.
func TestViewPinsGeneration(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	before := s.View()
	wantLen := before.Len()
	wantGen := before.Gen()
	wantStats := before.Stats()

	m := testMat("pin-probe", arrayEntry())
	m.Description = "a zanzibar probe description"
	if err := s.AddMaterial(m); err != nil {
		t.Fatal(err)
	}

	if before.Gen() != wantGen {
		t.Errorf("pinned generation moved: %d -> %d", wantGen, before.Gen())
	}
	if before.Len() != wantLen {
		t.Errorf("pinned Len = %d, want %d", before.Len(), wantLen)
	}
	if before.Material("pin-probe") != nil {
		t.Error("pinned view sees the post-pin material")
	}
	if hits, _ := before.SearchText("zanzibar", 5); len(hits) != 0 {
		t.Errorf("pinned search found post-pin material: %v", hits)
	}
	if got := before.Stats(); got.Materials != wantStats.Materials || got.Links != wantStats.Links {
		t.Errorf("pinned stats drifted: %+v, want %+v", got, wantStats)
	}

	after := s.View()
	if after.Gen() <= wantGen {
		t.Errorf("post-commit generation = %d, want > %d", after.Gen(), wantGen)
	}
	if after.Len() != wantLen+1 || after.Material("pin-probe") == nil {
		t.Error("post-commit view missing the committed material")
	}
	if hits, _ := after.SearchText("zanzibar", 5); len(hits) != 1 {
		t.Errorf("post-commit search hits = %d, want 1", len(hits))
	}

	// Removing the material restores the original corpus; the intermediate
	// view stays pinned on its own generation.
	if err := s.RemoveMaterial("pin-probe"); err != nil {
		t.Fatal(err)
	}
	if after.Material("pin-probe") == nil {
		t.Error("intermediate view lost its pinned material after removal")
	}
	if s.View().Len() != wantLen {
		t.Errorf("final Len = %d, want %d", s.View().Len(), wantLen)
	}
}

// TestReadsCompleteWhileCommitStalled is the acceptance test for the
// lock-free read path: a commit stalled mid-pipeline (inside its mutation
// hook, holding the writer lock) must not delay coverage, similarity, or
// search reads — they run on published views and never touch the writer
// lock. Before the refactor every one of these calls blocked on System.mu
// for the duration of the commit.
func TestReadsCompleteWhileCommitStalled(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	stall := make(chan struct{})
	entered := make(chan struct{})
	s.SetMutationHook(func(string, any) error {
		close(entered)
		<-stall
		return nil
	})

	commitDone := make(chan error, 1)
	go func() {
		commitDone <- s.AddMaterial(testMat("stalled", arrayEntry()))
	}()
	<-entered // the commit now holds the mutation lock, blocked in its hook

	readsDone := make(chan error, 1)
	go func() {
		readsDone <- func() error {
			v := s.View()
			if _, err := v.Coverage("cs13", ""); err != nil {
				return err
			}
			if g := v.SimilarityGraph("nifty", "peachy", 2); len(g.Edges) == 0 {
				return fmt.Errorf("empty similarity graph")
			}
			if hits, _ := v.SearchText("fractal", 5); len(hits) == 0 {
				return fmt.Errorf("no search hits")
			}
			if v.Material("stalled") != nil {
				return fmt.Errorf("read observed the uncommitted material")
			}
			// Resolving fresh views must not block either.
			if s.View().Gen() != v.Gen() {
				return fmt.Errorf("generation advanced during a stalled commit")
			}
			return nil
		}()
	}()

	select {
	case err := <-readsDone:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("reads blocked behind a stalled commit")
	}

	// Unstall: the commit completes and becomes visible.
	close(stall)
	if err := <-commitDone; err != nil {
		t.Fatal(err)
	}
	s.SetMutationHook(nil)
	if s.View().Material("stalled") == nil {
		t.Error("commit not visible after unstalling")
	}
}

// TestConcurrentReadersDuringCommits races many view readers against a
// mutator under -race, asserting each reader observes internally consistent
// state: a view's store row count and engine length always agree.
func TestConcurrentReadersDuringCommits(t *testing.T) {
	s, err := NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	errc := make(chan error, 9)
	for r := 0; r < 8; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := s.View()
				if got := v.Stats().Materials; got != v.Len() {
					errc <- fmt.Errorf("view gen %d: stats sees %d materials, engine %d", v.Gen(), got, v.Len())
					return
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		m := testMat(fmt.Sprintf("race-%d", i), arrayEntry())
		if err := s.AddMaterial(m); err != nil {
			t.Fatal(err)
		}
		if i%3 == 0 {
			if err := s.RemoveMaterial(fmt.Sprintf("race-%d", i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// TestReclassifyVisibility pins the commit pipeline's publish ordering for
// the third mutator: a reclassification is atomic — no view ever shows the
// material half-moved between entries.
func TestReclassifyVisibility(t *testing.T) {
	s, _ := New()
	loops := "acm-ieee-cs-curricula-2013/sdf/fundamental-programming-concepts/conditional-and-iterative-control-structures"
	if err := s.AddMaterial(testMat("rv", arrayEntry())); err != nil {
		t.Fatal(err)
	}
	before := s.View()
	if err := s.Reclassify("rv", []material.Classification{{NodeID: loops}}); err != nil {
		t.Fatal(err)
	}
	got := before.Material("rv").ClassificationIDs()
	if len(got) != 1 || got[0] != arrayEntry() {
		t.Errorf("pinned view classifications = %v, want the original", got)
	}
	now := s.View().Material("rv").ClassificationIDs()
	if len(now) != 1 || now[0] != loops {
		t.Errorf("current view classifications = %v, want %q", now, loops)
	}
}
