package core

import (
	"fmt"

	"carcs/internal/material"
	"carcs/internal/relstore"
	"carcs/internal/textproc"
)

// BatchItemError reports which item of a batch mutation was refused. The
// whole batch is rejected — no earlier item commits — so callers can fix or
// drop the offender and retry.
type BatchItemError struct {
	// Index is the item's position in the submitted batch.
	Index int
	// ID is the material id of the offending item, when known.
	ID string
	// Err is the underlying refusal.
	Err error
}

func (e *BatchItemError) Error() string {
	return fmt.Sprintf("core: batch item %d (%s): %v", e.Index, e.ID, e.Err)
}

func (e *BatchItemError) Unwrap() error { return e.Err }

// AddMaterials validates and stores a batch of materials as one commit:
// every operation is journaled in a single durability round trip (one fsync
// when the batch mutation hook is installed), the rows land through one
// relstore edit session, the incremental models fold all N observations, and
// a single generation bump + view publish covers the whole batch — the
// amortization BENCH_2 showed the per-record pipeline paying for dearly.
//
// The batch is all-or-nothing: any invalid or duplicate item (against the
// stored corpus or within the batch) rejects the whole call with a
// *BatchItemError naming the offender, before anything is journaled.
// Equivalence with N sequential AddMaterial calls is exact — same row ids,
// same model state, same Snapshot bytes — because items apply in slice
// order. An empty batch is a no-op.
func (s *System) AddMaterials(ms []*material.Material) error {
	if len(ms) == 0 {
		return nil
	}
	clones := make([]*material.Material, len(ms))
	for i, m := range ms {
		if errs := m.Validate(s.cs13, s.pdc12); len(errs) > 0 {
			return &BatchItemError{Index: i, ID: m.ID, Err: fmt.Errorf("invalid material: %w", errs[0])}
		}
		clones[i] = m.Clone()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Every refusal must precede the journal hook: once the batch is in the
	// WAL, apply is not allowed to fail.
	inBatch := make(map[string]int, len(clones))
	for i, m := range clones {
		if prev, dup := inBatch[m.ID]; dup {
			return &BatchItemError{Index: i, ID: m.ID, Err: fmt.Errorf("duplicate of batch item %d", prev)}
		}
		inBatch[m.ID] = i
		if _, taken := s.materials.UniqueID("slug", m.ID); taken {
			return &BatchItemError{Index: i, ID: m.ID, Err: fmt.Errorf("duplicate material")}
		}
	}
	if err := s.quotaRoomLocked(len(clones)); err != nil {
		return fmt.Errorf("core: add batch of %d: %w", len(clones), err)
	}
	ops := make([]OpPayload, len(clones))
	for i, m := range clones {
		ops[i] = OpPayload{Op: OpAddMaterial, Payload: addMaterialPayload{Material: m}}
	}
	if err := s.batchHookLocked(ops); err != nil {
		return fmt.Errorf("core: add batch of %d: %w", len(clones), err)
	}
	if err := s.applyAddBatchLocked(clones); err != nil {
		return err
	}
	s.publishLocked()
	return nil
}

// applyAddBatchLocked commits already-validated, already-journaled materials
// to the live containers without publishing: one InsertBatch edit session
// for the rows, one AddBatch for the classification links, and per-material
// search/model folds in slice order (the engines are incremental and
// order-defined). Callers hold mu and publish once afterwards.
func (s *System) applyAddBatchLocked(ms []*material.Material) error {
	rows := make([]relstore.Row, len(ms))
	for i, m := range ms {
		rows[i] = materialRow(m)
	}
	ids, err := s.materials.InsertBatch(rows)
	if err != nil {
		return fmt.Errorf("core: add batch of %d: %w", len(ms), err)
	}
	// Resolve classification entries to row ids in two passes: look up the
	// known ones, then insert all the missing ones through one edit session.
	entryIDs := make(map[string]int64)
	var missing []relstore.Row
	for _, m := range ms {
		for _, cl := range m.Classifications {
			if _, ok := entryIDs[cl.NodeID]; ok {
				continue
			}
			if id, ok := s.entries.UniqueID("node", cl.NodeID); ok {
				entryIDs[cl.NodeID] = id
				continue
			}
			entryIDs[cl.NodeID] = -1 // placeholder: inserted below
			missing = append(missing, relstore.Row{
				"node":  cl.NodeID,
				"bloom": cl.Bloom.String(),
			})
		}
	}
	if len(missing) > 0 {
		newIDs, err := s.entries.InsertBatch(missing)
		if err != nil {
			return fmt.Errorf("core: add batch of %d: %w", len(ms), err)
		}
		for i, r := range missing {
			entryIDs[r["node"].(string)] = newIDs[i]
		}
	}
	var pairs [][2]int64
	for i, m := range ms {
		for _, cl := range m.Classifications {
			pairs = append(pairs, [2]int64{ids[i], entryIDs[cl.NodeID]})
		}
	}
	s.links.AddBatch(pairs)
	// Analyze each text once, then fold the whole batch into every
	// term-keyed structure through one builder session each — the same
	// state N sequential folds produce, at a fraction of the node copying.
	termLists := make([][]string, len(ms))
	for i, m := range ms {
		termLists[i] = textproc.Terms(m.SearchText())
	}
	s.engine.AddTermsBatch(ms, termLists)
	for _, b := range s.bayes {
		b.TrainTermsBatch(ms, termLists)
	}
	s.cooccur.ObserveBatch(ms)
	return nil
}
