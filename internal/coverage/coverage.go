// Package coverage computes how a collection of classified materials covers
// a curriculum ontology — the analysis behind Figure 2 of the paper and its
// Sec. IV-B "Coverage of a Class" use case.
//
// Two aggregate counts are maintained per ontology node:
//
//   - Direct:   how many materials are classified exactly at the node
//     ("the color intensity of the node is proportional to the
//     number of material that matches that entry").
//   - Subtree:  how many distinct materials are classified anywhere in the
//     node's subtree, which is what makes areas and units light up
//     in the coverage tree.
//
// Pair counts (material × entry) are also exposed because area rankings
// ("the most common area of the CS curriculum covered by Nifty is Software
// Development Fundamentals, followed by ...") are about volume of matched
// entries, not just distinct materials.
package coverage

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// Report is the coverage of one collection against one ontology.
type Report struct {
	// Ontology is the curriculum the report is computed against.
	Ontology *ontology.Ontology
	// Collection is the display name of the material set.
	Collection string
	// Materials is the number of materials considered.
	Materials int
	// Direct maps node ID to the number of materials classified exactly
	// at that node. Only classifiable nodes can have non-zero Direct.
	Direct map[string]int
	// Subtree maps node ID to the number of distinct materials
	// classified anywhere at-or-below that node.
	Subtree map[string]int
	// Pairs maps node ID to the number of (material, entry) pairs
	// at-or-below the node.
	Pairs map[string]int
}

// Compute builds the coverage report of the materials against the ontology.
// Classifications pointing into other ontologies are ignored, so a single
// material set can be reported against CS13 and PDC12 independently, exactly
// as Figure 2 does.
//
// The scan works on a dense per-ontology index (node IDs -> small integers
// with a precomputed ancestor table) and tracks material-distinct subtree
// coverage with per-node bitsets over material indices. Large corpora are
// sharded across GOMAXPROCS workers — each shard owns a contiguous block of
// materials, so its distinct counts simply add — and the partial reports
// are merged; the result is identical to the sequential scan for any worker
// count.
func Compute(o *ontology.Ontology, label string, mats []*material.Material) *Report {
	r, _ := ComputeCtx(context.Background(), o, label, mats)
	return r
}

// ComputeCtx is Compute with cooperative cancellation: each worker checks
// the context at shard boundaries and every cancelCheckEvery materials
// within a shard, so a shed or timed-out request stops burning CPU within
// a bounded slice of work instead of scanning the whole corpus.
func ComputeCtx(ctx context.Context, o *ontology.Ontology, label string, mats []*material.Material) (*Report, error) {
	return computeWithCtx(ctx, o, label, mats, shardPlan(len(mats)))
}

// computeWith runs the scan over explicit shard boundaries (bounds[i] to
// bounds[i+1] per shard); Compute picks boundaries from GOMAXPROCS, tests
// force them to cover the merge path on any machine.
func computeWith(o *ontology.Ontology, label string, mats []*material.Material, bounds []int) *Report {
	r, _ := computeWithCtx(context.Background(), o, label, mats, bounds)
	return r
}

func computeWithCtx(ctx context.Context, o *ontology.Ontology, label string, mats []*material.Material, bounds []int) (*Report, error) {
	r := &Report{
		Ontology:   o,
		Collection: label,
		Materials:  len(mats),
		Direct:     make(map[string]int),
		Subtree:    make(map[string]int),
		Pairs:      make(map[string]int),
	}
	ix := indexFor(o)
	n := len(ix.ids)
	parts := make([]partialReport, len(bounds)-1)
	if len(parts) == 1 {
		var err error
		parts[0], err = computeShard(ctx, ix, mats)
		if err != nil {
			return nil, err
		}
	} else {
		errs := make([]error, len(parts))
		var wg sync.WaitGroup
		for si := range parts {
			wg.Add(1)
			go func(si int) {
				defer wg.Done()
				parts[si], errs[si] = computeShard(ctx, ix, mats[bounds[si]:bounds[si+1]])
			}(si)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
	}
	direct := make([]int, n)
	pairs := make([]int, n)
	subtree := make([]int, n)
	for _, p := range parts {
		for i := 0; i < n; i++ {
			direct[i] += p.direct[i]
			pairs[i] += p.pairs[i]
			if p.sets[i] != nil {
				subtree[i] += p.sets[i].count()
			}
		}
	}
	for i := 0; i < n; i++ {
		if direct[i] > 0 {
			r.Direct[ix.ids[i]] = direct[i]
		}
		if pairs[i] > 0 {
			r.Pairs[ix.ids[i]] = pairs[i]
		}
		if subtree[i] > 0 {
			r.Subtree[ix.ids[i]] = subtree[i]
		}
	}
	return r, nil
}

// cancelCheckEvery is how many materials a shard scans between context
// checks: frequent enough that cancellation lands within microseconds of
// work, rare enough that the check never shows up in profiles.
const cancelCheckEvery = 128

// computeShard scans one contiguous block of materials into a partial
// report. Bit indices are material positions within the shard.
func computeShard(ctx context.Context, ix *ontIndex, mats []*material.Material) (partialReport, error) {
	n := len(ix.ids)
	p := partialReport{
		direct: make([]int, n),
		pairs:  make([]int, n),
		sets:   make([]bitset, n),
	}
	touch := func(node int32, mi int) {
		if p.sets[node] == nil {
			p.sets[node] = newBitset(len(mats))
		}
		p.sets[node].set(mi)
	}
	for mi, m := range mats {
		if mi%cancelCheckEvery == 0 {
			if err := ctx.Err(); err != nil {
				return p, err
			}
		}
		for _, cl := range m.ClassificationIDs() {
			i, ok := ix.idx[cl]
			if !ok {
				continue
			}
			p.direct[i]++
			p.pairs[i]++
			touch(i, mi)
			for _, a := range ix.anc(i) {
				p.pairs[a]++
				touch(a, mi)
			}
		}
	}
	return p, nil
}

// Covered reports whether any material touches the node or its subtree.
func (r *Report) Covered(id string) bool { return r.Subtree[id] > 0 }

// CoveredEntries returns the number of distinct classifiable entries in the
// subtree of rootID that at least one material matches, and the total number
// of classifiable entries there.
func (r *Report) CoveredEntries(rootID string) (covered, total int) {
	r.Ontology.Walk(rootID, func(n *ontology.Node, _ int) bool {
		if n.Kind.Classifiable() {
			total++
			if r.Direct[n.ID] > 0 {
				covered++
			}
		}
		return true
	})
	return covered, total
}

// Ratio returns covered/total classifiable entries under rootID, 0 when the
// subtree has none.
func (r *Report) Ratio(rootID string) float64 {
	c, t := r.CoveredEntries(rootID)
	if t == 0 {
		return 0
	}
	return float64(c) / float64(t)
}

// AreaCount is one knowledge area's aggregate coverage.
type AreaCount struct {
	// AreaID is the node ID of the area.
	AreaID string
	// Code is the short published code ("SDF", "PD", ...).
	Code string
	// Label is the area name.
	Label string
	// Materials is the number of distinct materials touching the area.
	Materials int
	// Pairs is the number of (material, entry) pairs inside the area.
	Pairs int
	// Covered and Total count classifiable entries in the area.
	Covered, Total int
}

// AreaRanking returns every knowledge area ordered by descending pair count
// (ties broken by material count, then document order) — the ordering the
// paper uses when it says one area is "the most covered", "followed by"
// others.
func (r *Report) AreaRanking() []AreaCount {
	var out []AreaCount
	for _, areaID := range r.Ontology.Areas() {
		cov, tot := r.CoveredEntries(areaID)
		out = append(out, AreaCount{
			AreaID:    areaID,
			Code:      r.Ontology.Code(areaID),
			Label:     r.Ontology.Node(areaID).Label,
			Materials: r.Subtree[areaID],
			Pairs:     r.Pairs[areaID],
			Covered:   cov,
			Total:     tot,
		})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pairs != out[j].Pairs {
			return out[i].Pairs > out[j].Pairs
		}
		return out[i].Materials > out[j].Materials
	})
	return out
}

// TopAreas returns the codes of the k most-covered areas with non-zero
// coverage, in rank order.
func (r *Report) TopAreas(k int) []string {
	var out []string
	for _, a := range r.AreaRanking() {
		if a.Pairs == 0 {
			break
		}
		out = append(out, a.Code)
		if k > 0 && len(out) >= k {
			break
		}
	}
	return out
}

// UncoveredAreas returns the codes of areas no material touches, in document
// order — the transparent nodes of Figure 2.
func (r *Report) UncoveredAreas() []string {
	var out []string
	for _, areaID := range r.Ontology.Areas() {
		if !r.Covered(areaID) {
			out = append(out, r.Ontology.Code(areaID))
		}
	}
	return out
}

// Intensity returns the Figure 2 color intensity of a node: its subtree
// material count normalized by the maximum subtree count among nodes of the
// same depth class (first-level versus deeper), in [0, 1]. Uncovered nodes
// return 0 ("transparent").
func (r *Report) Intensity(id string) float64 {
	n := r.Subtree[id]
	if n == 0 {
		return 0
	}
	depth := r.Ontology.Depth(id)
	max := 0
	r.Ontology.Walk(r.Ontology.RootID(), func(node *ontology.Node, d int) bool {
		if sameDepthClass(d, depth) && r.Subtree[node.ID] > max {
			max = r.Subtree[node.ID]
		}
		return true
	})
	if max == 0 {
		return 0
	}
	return float64(n) / float64(max)
}

// sameDepthClass groups depths the way Figure 2's palette does: root (0),
// areas (1), everything deeper.
func sameDepthClass(a, b int) bool {
	class := func(d int) int {
		if d < 2 {
			return d
		}
		return 2
	}
	return class(a) == class(b)
}

// String renders a compact one-line summary.
func (r *Report) String() string {
	cov, tot := r.CoveredEntries(r.Ontology.RootID())
	return fmt.Sprintf("%s vs %s: %d materials, %d/%d entries covered",
		r.Collection, r.Ontology.Name(), r.Materials, cov, tot)
}
