package coverage

import (
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
)

func TestComputeDepthVerdicts(t *testing.T) {
	b := ontology.NewBuilder("D")
	a := b.Area("AA", "Area")
	u := a.Unit("Unit", 0)
	u.BloomTopic("Apply Me", ontology.TierCore1, ontology.BloomApply)
	u.BloomTopic("Know Me", ontology.TierCore1, ontology.BloomKnow)
	u.Topic("No Level", ontology.TierCore1)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	applyMe := "d/aa/unit/apply-me"
	knowMe := "d/aa/unit/know-me"
	noLevel := "d/aa/unit/no-level"

	mats := []*material.Material{
		{ID: "m1", Title: "M1", Kind: material.Assignment, Level: material.CS1,
			Classifications: []material.Classification{
				{NodeID: applyMe, Bloom: ontology.BloomKnow},      // shallow
				{NodeID: knowMe, Bloom: ontology.BloomComprehend}, // met (exceeds)
				{NodeID: noLevel, Bloom: ontology.BloomApply},     // skipped: no expectation
			}},
		{ID: "m2", Title: "M2", Kind: material.Slides, Level: material.CS2,
			Classifications: []material.Classification{
				{NodeID: applyMe}, // unrated
			}},
	}
	r := ComputeDepth(o, mats)
	if r.Met != 1 || r.Shallow != 1 || r.Unrated != 1 {
		t.Fatalf("verdicts: met=%d shallow=%d unrated=%d", r.Met, r.Shallow, r.Unrated)
	}
	if len(r.Entries) != 3 {
		t.Fatalf("entries = %d", len(r.Entries))
	}
	sh := r.ShallowEntries()
	if len(sh) != 1 || sh[0].MaterialID != "m1" || sh[0].NodeID != applyMe {
		t.Errorf("shallow = %+v", sh)
	}
	if got := r.RatedFraction(); got != 2.0/3 {
		t.Errorf("RatedFraction = %v", got)
	}
	empty := ComputeDepth(o, nil)
	if empty.RatedFraction() != 0 || len(empty.Entries) != 0 {
		t.Error("empty report misbehaves")
	}
}

// TestITCSDepthReport exercises the extension on the seeded corpus: the
// performance slides mention Amdahl's law at Know while PDC12 expects
// Comprehend (the paper's "checks the box in the same way" concern), and
// the pthreads/producer-consumer assignments meet their Apply expectations.
func TestITCSDepthReport(t *testing.T) {
	r := ComputeDepth(ontology.PDC12(), corpus.ITCS3145().All())
	if r.Met < 2 {
		t.Errorf("met = %d, want the annotated assignments to meet expectations", r.Met)
	}
	if r.Shallow < 1 {
		t.Fatalf("shallow = %d, want the Amdahl mention flagged", r.Shallow)
	}
	found := false
	for _, e := range r.ShallowEntries() {
		if e.NodeID == "nsf-ieee-tcpp-pdc-2012/pr/performance-issues/data/amdahl-s-law" {
			found = true
			if e.Expected != ontology.BloomComprehend || e.Actual != ontology.BloomKnow {
				t.Errorf("amdahl depth = %+v", e)
			}
		}
	}
	if !found {
		t.Error("Amdahl shallow entry missing")
	}
	if f := r.RatedFraction(); f <= 0 || f >= 1 {
		t.Errorf("RatedFraction = %v, want partial adoption", f)
	}
}
