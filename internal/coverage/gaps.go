package coverage

import (
	"fmt"
	"sort"
	"strings"

	"carcs/internal/ontology"
)

// Gap describes an uncovered region of the curriculum: a maximal subtree no
// material touches. The Sec. IV-B analysis ("the absence of tools from the
// class is an omission of the instructor") and the Sec. IV-C expert workflow
// ("help PDC experts identify topics for which pedagogical material does not
// exist and that should be developed") are both gap reports.
type Gap struct {
	// NodeID is the root of the uncovered subtree.
	NodeID string
	// Path is the display path of that root.
	Path string
	// Entries is the number of classifiable entries going unserved.
	Entries int
	// Tier is the most demanding tier present in the subtree (core-tier-1
	// beats core-tier-2 beats elective); gaps in core material matter
	// more than gaps in electives.
	Tier ontology.Tier
}

// Gaps returns the maximal uncovered subtrees under rootID, ordered by
// number of lost entries (descending), then path. A subtree is reported at
// its highest uncovered node only.
func (r *Report) Gaps(rootID string) []Gap {
	var out []Gap
	var rec func(id string)
	rec = func(id string) {
		if !r.Covered(id) {
			entries, tier := r.subtreeDemand(id)
			if entries > 0 {
				out = append(out, Gap{
					NodeID:  id,
					Path:    r.Ontology.Path(id),
					Entries: entries,
					Tier:    tier,
				})
			}
			return // maximal: do not descend
		}
		for _, kid := range r.Ontology.Children(id) {
			rec(kid)
		}
	}
	rec(rootID)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Entries != out[j].Entries {
			return out[i].Entries > out[j].Entries
		}
		return out[i].Path < out[j].Path
	})
	return out
}

// CoreGaps filters Gaps to subtrees containing core (tier-1 or tier-2)
// entries — the ones curriculum guidelines require every program to cover.
func (r *Report) CoreGaps(rootID string) []Gap {
	var out []Gap
	for _, g := range r.Gaps(rootID) {
		if g.Tier == ontology.TierCore1 || g.Tier == ontology.TierCore2 {
			out = append(out, g)
		}
	}
	return out
}

func (r *Report) subtreeDemand(id string) (entries int, tier ontology.Tier) {
	tier = ontology.TierElective
	seen := false
	r.Ontology.Walk(id, func(n *ontology.Node, _ int) bool {
		if n.Kind.Classifiable() {
			entries++
			if n.Tier != ontology.TierUnspecified {
				seen = true
				if n.Tier < tier && n.Tier != ontology.TierUnspecified {
					tier = n.Tier
				}
			}
		}
		return true
	})
	if !seen {
		tier = ontology.TierUnspecified
	}
	return entries, tier
}

// DiffEntry is one ontology entry covered by one collection but not another.
type DiffEntry struct {
	NodeID string
	Path   string
	// OnlyIn names the collection that covers the entry.
	OnlyIn string
}

// Diff compares two reports over the same ontology and lists classifiable
// entries covered by exactly one of them, sorted by path. It powers the
// Sec. IV-C alignment question: what do Nifty assignments exercise that
// Peachy assignments do not, and vice versa.
func Diff(a, b *Report) []DiffEntry {
	if a.Ontology != b.Ontology {
		return nil
	}
	var out []DiffEntry
	a.Ontology.Walk(a.Ontology.RootID(), func(n *ontology.Node, _ int) bool {
		if !n.Kind.Classifiable() {
			return true
		}
		inA, inB := a.Direct[n.ID] > 0, b.Direct[n.ID] > 0
		switch {
		case inA && !inB:
			out = append(out, DiffEntry{NodeID: n.ID, Path: a.Ontology.Path(n.ID), OnlyIn: a.Collection})
		case inB && !inA:
			out = append(out, DiffEntry{NodeID: n.ID, Path: b.Ontology.Path(n.ID), OnlyIn: b.Collection})
		}
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// Alignment measures how much two collections exercise the same entries:
// |A ∩ B| / |A ∪ B| over directly covered classifiable entries. The paper's
// Sec. IV-C take-home — "unless the PDC community develops assignments that
// align better with classic CS1-CS2 assignments, it is unlikely we will see
// massive adoption" — is a statement that this number is small between Nifty
// and Peachy.
func Alignment(a, b *Report) float64 {
	if a.Ontology != b.Ontology {
		return 0
	}
	inter, union := 0, 0
	a.Ontology.Walk(a.Ontology.RootID(), func(n *ontology.Node, _ int) bool {
		if !n.Kind.Classifiable() {
			return true
		}
		inA, inB := a.Direct[n.ID] > 0, b.Direct[n.ID] > 0
		if inA || inB {
			union++
		}
		if inA && inB {
			inter++
		}
		return true
	})
	if union == 0 {
		return 0
	}
	return float64(inter) / float64(union)
}

// HourCoverage weighs coverage by the suggested lecture hours CS13 attaches
// to knowledge units: of the curriculum's published core-hour budget, how
// many hours belong to units the material set touches at all, and how many
// to units it covers substantially (at least half the unit's classifiable
// entries). Curriculum committees budget in hours, so this is the number a
// department review asks for.
type HourCoverage struct {
	// TotalHours is the summed hour budget of all units carrying one.
	TotalHours float64
	// TouchedHours is the budget of units with any coverage.
	TouchedHours float64
	// SubstantialHours is the budget of units with >= 50% entry coverage.
	SubstantialHours float64
}

// Hours computes the hour-weighted coverage under rootID.
func (r *Report) Hours(rootID string) HourCoverage {
	var hc HourCoverage
	r.Ontology.Walk(rootID, func(n *ontology.Node, _ int) bool {
		if n.Kind != ontology.KindUnit || n.Hours <= 0 {
			return true
		}
		hc.TotalHours += n.Hours
		if r.Covered(n.ID) {
			hc.TouchedHours += n.Hours
			if cov, tot := r.CoveredEntries(n.ID); tot > 0 && cov*2 >= tot {
				hc.SubstantialHours += n.Hours
			}
		}
		return true
	})
	return hc
}

// Summary renders a human-readable multi-line area table, used by the CLI
// and the coverage-audit example.
func (r *Report) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.String())
	for _, a := range r.AreaRanking() {
		if a.Pairs == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-4s %-45s %3d materials %4d pairs %3d/%3d entries\n",
			a.Code, a.Label, a.Materials, a.Pairs, a.Covered, a.Total)
	}
	if un := r.UncoveredAreas(); len(un) > 0 {
		fmt.Fprintf(&b, "  untouched: %s\n", strings.Join(un, ", "))
	}
	return b.String()
}
