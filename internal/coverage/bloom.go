package coverage

import (
	"sort"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// DepthEntry compares how deeply a material covers an entry against the
// mastery level the curriculum expects. This implements the paper's
// Sec. IV-A proposal: "since both CS13 and PDC12 guidelines have
// incorporated Bloom levels, it would make sense to classify materials with
// Bloom levels as well" — motivated by the rectangle-method integrator that
// "checks the box in the same way" as a full numerical-methods lecture.
type DepthEntry struct {
	MaterialID string
	NodeID     string
	Path       string
	// Expected is the curriculum's Bloom level for the entry (topic
	// levels in PDC12, outcome levels in CS13).
	Expected ontology.Bloom
	// Actual is the Bloom level the classifier assigned the material.
	Actual ontology.Bloom
	// Verdict is "met", "shallow", or "unrated".
	Verdict string
}

// DepthReport is the Bloom comparison over a material set.
type DepthReport struct {
	Entries []DepthEntry
	Met     int
	Shallow int
	Unrated int
}

// ComputeDepth builds the Bloom depth report of the materials against the
// ontology. Classifications outside the ontology are skipped; entries whose
// curriculum level is unspecified are skipped entirely (nothing to compare
// against); classifications without a material-side level count as unrated.
func ComputeDepth(o *ontology.Ontology, mats []*material.Material) *DepthReport {
	r := &DepthReport{}
	for _, m := range mats {
		for _, cl := range m.Classifications {
			n := o.Node(cl.NodeID)
			if n == nil || n.Bloom == ontology.BloomUnspecified {
				continue
			}
			e := DepthEntry{
				MaterialID: m.ID,
				NodeID:     cl.NodeID,
				Path:       o.Path(cl.NodeID),
				Expected:   n.Bloom,
				Actual:     cl.Bloom,
			}
			switch {
			case cl.Bloom == ontology.BloomUnspecified:
				e.Verdict = "unrated"
				r.Unrated++
			case cl.Bloom >= n.Bloom:
				e.Verdict = "met"
				r.Met++
			default:
				e.Verdict = "shallow"
				r.Shallow++
			}
			r.Entries = append(r.Entries, e)
		}
	}
	sort.SliceStable(r.Entries, func(i, j int) bool {
		if r.Entries[i].Verdict != r.Entries[j].Verdict {
			return r.Entries[i].Verdict < r.Entries[j].Verdict // met < shallow < unrated
		}
		if r.Entries[i].MaterialID != r.Entries[j].MaterialID {
			return r.Entries[i].MaterialID < r.Entries[j].MaterialID
		}
		return r.Entries[i].NodeID < r.Entries[j].NodeID
	})
	return r
}

// ShallowEntries returns only the entries covered below the curriculum's
// expected level — the "checks the box in the same way" problem.
func (r *DepthReport) ShallowEntries() []DepthEntry {
	var out []DepthEntry
	for _, e := range r.Entries {
		if e.Verdict == "shallow" {
			out = append(out, e)
		}
	}
	return out
}

// RatedFraction is the share of comparable classifications that carry a
// material-side Bloom level at all — a measure of how far a corpus has
// adopted the proposed extension.
func (r *DepthReport) RatedFraction() float64 {
	total := len(r.Entries)
	if total == 0 {
		return 0
	}
	return float64(r.Met+r.Shallow) / float64(total)
}
