package coverage

import (
	"strings"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
)

func miniOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	b := ontology.NewBuilder("Mini")
	a := b.Area("AA", "Area A")
	u1 := a.Unit("Unit One", 1)
	u1.Topic("T1", ontology.TierCore1)
	u1.Topic("T2", ontology.TierCore2)
	u2 := a.Unit("Unit Two", 1)
	u2.Topic("T3", ontology.TierElective)
	bb := b.Area("BB", "Area B")
	bu := bb.Unit("Unit Three", 1)
	bu.Topic("T4", ontology.TierCore1)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func mat(id string, cls ...string) *material.Material {
	m := &material.Material{ID: id, Title: id, Kind: material.Assignment, Level: material.CS1}
	for _, c := range cls {
		m.Classifications = append(m.Classifications, material.Classification{NodeID: c})
	}
	return m
}

func TestComputeCounts(t *testing.T) {
	o := miniOntology(t)
	t1 := "mini/aa/unit-one/t1"
	t2 := "mini/aa/unit-one/t2"
	t3 := "mini/aa/unit-two/t3"
	mats := []*material.Material{
		mat("m1", t1, t2),
		mat("m2", t1),
		mat("m3", t3, "other-ontology/x"), // foreign id ignored
	}
	r := Compute(o, "test", mats)
	if r.Materials != 3 {
		t.Errorf("Materials = %d", r.Materials)
	}
	if r.Direct[t1] != 2 || r.Direct[t2] != 1 || r.Direct[t3] != 1 {
		t.Errorf("Direct = %v", r.Direct)
	}
	u1 := "mini/aa/unit-one"
	if r.Subtree[u1] != 2 { // m1 and m2, distinct materials
		t.Errorf("Subtree[unit-one] = %d", r.Subtree[u1])
	}
	if r.Pairs[u1] != 3 { // (m1,t1),(m1,t2),(m2,t1)
		t.Errorf("Pairs[unit-one] = %d", r.Pairs[u1])
	}
	area := "mini/aa"
	if r.Subtree[area] != 3 || r.Pairs[area] != 4 {
		t.Errorf("area Subtree=%d Pairs=%d", r.Subtree[area], r.Pairs[area])
	}
	if r.Subtree[o.RootID()] != 3 {
		t.Errorf("root Subtree = %d", r.Subtree[o.RootID()])
	}
	if !r.Covered(area) || r.Covered("mini/bb") {
		t.Error("Covered misbehaves")
	}
	cov, tot := r.CoveredEntries(o.RootID())
	if cov != 3 || tot != 4 {
		t.Errorf("CoveredEntries = %d/%d", cov, tot)
	}
	if got := r.Ratio("mini/bb"); got != 0 {
		t.Errorf("Ratio(bb) = %v", got)
	}
	if got := r.Ratio("mini/aa"); got != 1 {
		t.Errorf("Ratio(aa) = %v", got)
	}
}

func TestAreaRankingAndGaps(t *testing.T) {
	o := miniOntology(t)
	mats := []*material.Material{
		mat("m1", "mini/aa/unit-one/t1"),
		mat("m2", "mini/aa/unit-one/t1", "mini/aa/unit-one/t2"),
	}
	r := Compute(o, "test", mats)
	rank := r.AreaRanking()
	if len(rank) != 2 || rank[0].Code != "AA" || rank[1].Code != "BB" {
		t.Fatalf("ranking = %+v", rank)
	}
	if rank[0].Pairs != 3 || rank[0].Materials != 2 || rank[0].Covered != 2 || rank[0].Total != 3 {
		t.Errorf("AA counts = %+v", rank[0])
	}
	if got := r.TopAreas(0); len(got) != 1 || got[0] != "AA" {
		t.Errorf("TopAreas = %v", got)
	}
	if got := r.UncoveredAreas(); len(got) != 1 || got[0] != "BB" {
		t.Errorf("UncoveredAreas = %v", got)
	}
	gaps := r.Gaps(o.RootID())
	// Maximal uncovered subtrees: area BB entirely, and unit-two under AA.
	if len(gaps) != 2 {
		t.Fatalf("gaps = %+v", gaps)
	}
	if gaps[0].NodeID != "mini/bb" && gaps[1].NodeID != "mini/bb" {
		t.Errorf("BB not reported as gap: %+v", gaps)
	}
	core := r.CoreGaps(o.RootID())
	if len(core) != 1 || core[0].NodeID != "mini/bb" || core[0].Tier != ontology.TierCore1 {
		t.Errorf("CoreGaps = %+v", core)
	}
}

func TestIntensity(t *testing.T) {
	o := miniOntology(t)
	mats := []*material.Material{
		mat("m1", "mini/aa/unit-one/t1"),
		mat("m2", "mini/aa/unit-one/t1"),
		mat("m3", "mini/aa/unit-two/t3"),
	}
	r := Compute(o, "test", mats)
	if got := r.Intensity("mini/aa/unit-one/t1"); got != 1 {
		t.Errorf("max-intensity topic = %v", got)
	}
	if got := r.Intensity("mini/aa/unit-two/t3"); got != 0.5 {
		t.Errorf("half-intensity topic = %v", got)
	}
	if got := r.Intensity("mini/bb"); got != 0 {
		t.Errorf("uncovered intensity = %v", got)
	}
	if got := r.Intensity("mini/aa"); got != 1 {
		t.Errorf("area intensity = %v", got)
	}
}

func TestDiffAndAlignment(t *testing.T) {
	o := miniOntology(t)
	a := Compute(o, "A", []*material.Material{mat("m1", "mini/aa/unit-one/t1", "mini/aa/unit-one/t2")})
	b := Compute(o, "B", []*material.Material{mat("m2", "mini/aa/unit-one/t1", "mini/bb/unit-three/t4")})
	d := Diff(a, b)
	if len(d) != 2 {
		t.Fatalf("Diff = %+v", d)
	}
	only := map[string]string{}
	for _, e := range d {
		only[e.NodeID] = e.OnlyIn
	}
	if only["mini/aa/unit-one/t2"] != "A" || only["mini/bb/unit-three/t4"] != "B" {
		t.Errorf("Diff attribution = %v", only)
	}
	if got := Alignment(a, b); got != 1.0/3 {
		t.Errorf("Alignment = %v", got)
	}
	if got := Alignment(a, a); got != 1 {
		t.Errorf("self Alignment = %v", got)
	}
	other := Compute(ontology.PDC12(), "P", nil)
	if Diff(a, other) != nil || Alignment(a, other) != 0 {
		t.Error("cross-ontology diff should be empty")
	}
	empty := Compute(o, "E", nil)
	if got := Alignment(empty, empty); got != 0 {
		t.Errorf("empty Alignment = %v", got)
	}
}

// ---------------------------------------------------------------------------
// Figure 2 shape tests (experiments E2, E3, E4).
// ---------------------------------------------------------------------------

// TestFigure2NiftyShape: Fig. 2a/2d. Nifty covers no PDC12 topics; its CS13
// ranking starts SDF, PL, AL, CN.
func TestFigure2NiftyShape(t *testing.T) {
	nifty := corpus.Nifty().All()
	cs := Compute(ontology.CS13(), "Nifty", nifty)
	top := cs.TopAreas(4)
	want := []string{"SDF", "PL", "AL", "CN"}
	for i := range want {
		if i >= len(top) || top[i] != want[i] {
			t.Fatalf("Nifty CS13 top areas = %v, want prefix %v", top, want)
		}
	}
	pd := Compute(ontology.PDC12(), "Nifty", nifty)
	if cov, _ := pd.CoveredEntries(pd.Ontology.RootID()); cov != 0 {
		t.Errorf("Nifty covers %d PDC12 entries, want 0", cov)
	}
	if got := len(pd.UncoveredAreas()); got != 4 {
		t.Errorf("Nifty leaves %d PDC12 areas uncovered, want all 4", got)
	}
}

// TestFigure2PeachyShape: Fig. 2b/2e. Peachy's CS13 ranking starts PD, then
// Systems Fundamentals and Architecture; SDF is low; its SDF hits are in
// Fundamental Programming Concepts or the Fig. 3 cluster's Arrays, never in
// the rest of Fundamental Data Structures; and PDC12 is broadly covered.
func TestFigure2PeachyShape(t *testing.T) {
	peachy := corpus.Peachy().All()
	cs := Compute(ontology.CS13(), "Peachy", peachy)
	rank := cs.AreaRanking()
	if rank[0].Code != "PD" {
		t.Fatalf("Peachy top area = %s, want PD", rank[0].Code)
	}
	pos := map[string]int{}
	for i, a := range rank {
		pos[a.Code] = i
	}
	if !(pos["SF"] < pos["SDF"] && pos["AR"] < pos["SDF"]) {
		t.Errorf("SDF should rank below SF and AR: SF=%d AR=%d SDF=%d", pos["SF"], pos["AR"], pos["SDF"])
	}
	if !(pos["SF"] <= 2 && pos["AR"] <= 3) {
		t.Errorf("SF/AR should follow PD: SF=%d AR=%d", pos["SF"], pos["AR"])
	}
	// SDF coverage concentrates on FPC (plus the cluster's Arrays).
	cs13 := ontology.CS13()
	fds := cs13.RootID() + "/sdf/fundamental-data-structures"
	arrays := fds + "/arrays"
	for id, n := range cs.Direct {
		if cs13.Within(id, fds) && id != arrays && n > 0 {
			t.Errorf("Peachy covers FDS entry %q", id)
		}
	}
	pd := Compute(ontology.PDC12(), "Peachy", peachy)
	if cov, _ := pd.CoveredEntries(pd.Ontology.RootID()); cov < 15 {
		t.Errorf("Peachy PDC12 coverage = %d entries, want broad", cov)
	}
	if un := pd.UncoveredAreas(); len(un) > 1 {
		t.Errorf("Peachy leaves PDC12 areas uncovered: %v", un)
	}
}

// TestFigure2ITCSShape: Fig. 2c/2f and Sec. IV-B.
func TestFigure2ITCSShape(t *testing.T) {
	itcs := corpus.ITCS3145().All()

	// PDC12 view: Programming dominates, Algorithms second, Architecture
	// and Cross-Cutting mostly untouched.
	pd := Compute(ontology.PDC12(), "ITCS 3145", itcs)
	rank := pd.AreaRanking()
	if rank[0].Code != "PR" || rank[1].Code != "AL" {
		t.Fatalf("ITCS PDC12 ranking = %v", rank)
	}
	for _, a := range rank[2:] {
		if a.Pairs*5 > rank[1].Pairs {
			t.Errorf("area %s too covered (%d pairs vs AL %d): should be mostly untouched", a.Code, a.Pairs, rank[1].Pairs)
		}
	}
	// Tools are the instructor's acknowledged omission.
	tools := pd.Ontology.RootID() + "/pr/performance-tools"
	if pd.Covered(tools) {
		t.Error("ITCS 3145 should not cover PDC12 performance tools")
	}

	// CS13 view: PD first, AL second, CN and SDF next; OS, PL, AR
	// partial; HCI/SP/IAS/PBD/GV/IS untouched.
	cs := Compute(ontology.CS13(), "ITCS 3145", itcs)
	top := cs.TopAreas(4)
	want := []string{"PD", "AL", "CN", "SDF"}
	for i := range want {
		if i >= len(top) || top[i] != want[i] {
			t.Fatalf("ITCS CS13 top areas = %v, want prefix %v", top, want)
		}
	}
	for _, code := range []string{"OS", "PL", "AR"} {
		id := cs.Ontology.AreaByCode(code)
		if !cs.Covered(id) {
			t.Errorf("area %s should be partially covered", code)
		}
		if cs.Ratio(id) > 0.5 {
			t.Errorf("area %s should be only partially covered (ratio %v)", code, cs.Ratio(id))
		}
	}
	uncovered := map[string]bool{}
	for _, code := range cs.UncoveredAreas() {
		uncovered[code] = true
	}
	for _, code := range []string{"HCI", "SP", "IAS", "PBD", "GV", "IS"} {
		if !uncovered[code] {
			t.Errorf("area %s should be untouched by ITCS 3145", code)
		}
	}
	// Distributed systems within PD is a by-design absence.
	if cs.Covered(cs.Ontology.RootID() + "/pd/distributed-systems") {
		t.Error("ITCS 3145 should not cover CS13 PD distributed systems")
	}
}

// TestGapReport: E9 — the Nifty/Peachy alignment is small, and the gap
// report against PDC12 names concrete subtrees for experts to fill.
func TestGapReport(t *testing.T) {
	cs13 := ontology.CS13()
	nifty := Compute(cs13, "Nifty", corpus.Nifty().All())
	peachy := Compute(cs13, "Peachy", corpus.Peachy().All())
	al := Alignment(nifty, peachy)
	if al <= 0 || al >= 0.2 {
		t.Errorf("Nifty/Peachy alignment = %v, want small but non-zero", al)
	}
	if len(Diff(nifty, peachy)) == 0 {
		t.Error("expected asymmetric coverage between Nifty and Peachy")
	}
	pd := Compute(ontology.PDC12(), "Peachy", corpus.Peachy().All())
	gaps := pd.Gaps(pd.Ontology.RootID())
	if len(gaps) == 0 {
		t.Fatal("Peachy should leave PDC12 gaps for experts to fill")
	}
	if !strings.Contains(pd.Summary(), "Peachy") {
		t.Error("Summary should carry the collection name")
	}
}

func TestHourCoverage(t *testing.T) {
	cs := Compute(ontology.CS13(), "ITCS 3145", corpus.ITCS3145().All())
	hc := cs.Hours(cs.Ontology.RootID())
	if hc.TotalHours <= 0 {
		t.Fatal("no hour budget in CS13")
	}
	if hc.TouchedHours <= 0 || hc.TouchedHours > hc.TotalHours {
		t.Errorf("touched hours = %v of %v", hc.TouchedHours, hc.TotalHours)
	}
	if hc.SubstantialHours > hc.TouchedHours {
		t.Errorf("substantial (%v) > touched (%v)", hc.SubstantialHours, hc.TouchedHours)
	}
	// A PDC elective touches a minority of the whole CS13 hour budget.
	if frac := hc.TouchedHours / hc.TotalHours; frac > 0.5 {
		t.Errorf("ITCS touches %.0f%% of CS13 core hours, expected a minority", 100*frac)
	}
	// Empty set covers zero hours.
	empty := Compute(ontology.CS13(), "none", nil)
	if got := empty.Hours(empty.Ontology.RootID()); got.TouchedHours != 0 || got.SubstantialHours != 0 {
		t.Errorf("empty hours = %+v", got)
	}
	// PDC12 publishes no unit hours in this encoding.
	pd := Compute(ontology.PDC12(), "peachy", corpus.Peachy().All())
	if got := pd.Hours(pd.Ontology.RootID()); got.TotalHours != 0 {
		t.Errorf("PDC12 hours = %+v", got)
	}
}
