package coverage

import (
	"math/bits"
	"runtime"
	"sync"

	"carcs/internal/ontology"
)

// ontIndex is a dense-integer view of one ontology for the hot Compute
// loop: node IDs mapped onto [0, n) in document order plus a flattened
// ancestor table, so the per-material inner loop is array arithmetic
// instead of repeated map lookups and ancestor-chain walks.
type ontIndex struct {
	ids []string // index -> node ID, document order
	idx map[string]int32
	// ancestors stores every node's ancestor indices (parent first, root
	// last) back to back; anc(i) slices the run via ancOff.
	ancestors []int32
	ancOff    []int32 // len(ids)+1 offsets into ancestors
}

func (ix *ontIndex) anc(i int32) []int32 {
	return ix.ancestors[ix.ancOff[i]:ix.ancOff[i+1]]
}

// indexCache memoizes indexes per frozen ontology. The curricula are
// package-level singletons in practice, so this is a handful of entries;
// unfrozen ontologies are never cached because they can still grow.
var indexCache sync.Map // *ontology.Ontology -> *ontIndex

func indexFor(o *ontology.Ontology) *ontIndex {
	if !o.Frozen() {
		return buildIndex(o)
	}
	if v, ok := indexCache.Load(o); ok {
		return v.(*ontIndex)
	}
	ix := buildIndex(o)
	indexCache.Store(o, ix)
	return ix
}

func buildIndex(o *ontology.Ontology) *ontIndex {
	ids := o.IDs()
	ix := &ontIndex{
		ids:    ids,
		idx:    make(map[string]int32, len(ids)),
		ancOff: make([]int32, len(ids)+1),
	}
	for i, id := range ids {
		ix.idx[id] = int32(i)
	}
	// Document order lists parents before children, so a node's ancestor
	// run is its parent followed by the parent's (already computed) run.
	for i, id := range ids {
		n := o.Node(id)
		if n.Parent != "" {
			p := ix.idx[n.Parent]
			ix.ancestors = append(ix.ancestors, p)
			ix.ancestors = append(ix.ancestors, ix.anc(p)...)
		}
		ix.ancOff[i+1] = int32(len(ix.ancestors))
	}
	return ix
}

// bitset is a fixed-capacity bit vector over material indices; one per
// touched ontology node tracks which materials reach the node's subtree.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int) { b[i>>6] |= 1 << (uint(i) & 63) }

func (b bitset) count() int {
	total := 0
	for _, w := range b {
		total += bits.OnesCount64(w)
	}
	return total
}

// shardPlan splits n materials into contiguous shards for the worker pool.
// Small inputs stay on one shard: the report for a classroom-sized corpus
// is dominated by fixed costs, not the scan.
func shardPlan(n int) []int {
	const minPerShard = 1024
	workers := runtime.GOMAXPROCS(0)
	if workers > n/minPerShard {
		workers = n / minPerShard
	}
	if workers < 1 {
		workers = 1
	}
	bounds := make([]int, workers+1)
	for i := 0; i <= workers; i++ {
		bounds[i] = i * n / workers
	}
	return bounds
}

// partialReport is one shard's contribution: direct/pair counts per node
// and, per touched node, the set of this shard's materials reaching its
// subtree. Material-distinct subtree counts add across shards because each
// material belongs to exactly one shard.
type partialReport struct {
	direct []int
	pairs  []int
	sets   []bitset
}
