package coverage

import (
	"reflect"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
)

// referenceCompute is the original map-based scan, kept verbatim as the
// specification the bitset/sharded kernel must match exactly.
func referenceCompute(o *ontology.Ontology, label string, mats []*material.Material) *Report {
	r := &Report{
		Ontology:   o,
		Collection: label,
		Materials:  len(mats),
		Direct:     make(map[string]int),
		Subtree:    make(map[string]int),
		Pairs:      make(map[string]int),
	}
	subtreeSets := make(map[string]map[int]bool)
	for mi, m := range mats {
		for _, cl := range m.ClassificationIDs() {
			if !o.Has(cl) {
				continue
			}
			r.Direct[cl]++
			r.Pairs[cl]++
			set := subtreeSets[cl]
			if set == nil {
				set = make(map[int]bool)
				subtreeSets[cl] = set
			}
			set[mi] = true
			for _, anc := range o.Ancestors(cl) {
				r.Pairs[anc]++
				aset := subtreeSets[anc]
				if aset == nil {
					aset = make(map[int]bool)
					subtreeSets[anc] = aset
				}
				aset[mi] = true
			}
		}
	}
	for id, set := range subtreeSets {
		r.Subtree[id] = len(set)
	}
	return r
}

func assertReportsEqual(t *testing.T, got, want *Report) {
	t.Helper()
	if got.Materials != want.Materials {
		t.Fatalf("Materials = %d, want %d", got.Materials, want.Materials)
	}
	if !reflect.DeepEqual(got.Direct, want.Direct) {
		t.Fatal("Direct maps differ")
	}
	if !reflect.DeepEqual(got.Subtree, want.Subtree) {
		t.Fatal("Subtree maps differ")
	}
	if !reflect.DeepEqual(got.Pairs, want.Pairs) {
		t.Fatal("Pairs maps differ")
	}
}

func TestComputeMatchesReference(t *testing.T) {
	for _, tc := range []struct {
		name string
		o    *ontology.Ontology
		mats []*material.Material
	}{
		{"nifty-cs13", ontology.CS13(), corpus.Nifty().All()},
		{"peachy-pdc12", ontology.PDC12(), corpus.Peachy().All()},
		{"synthetic-cs13", ontology.CS13(), corpus.Synthetic(corpus.SyntheticOptions{N: 500, Seed: 3}).All()},
		{"empty", ontology.CS13(), nil},
	} {
		t.Run(tc.name, func(t *testing.T) {
			assertReportsEqual(t, Compute(tc.o, "x", tc.mats), referenceCompute(tc.o, "x", tc.mats))
		})
	}
}

func TestComputeShardedMatchesSingleShard(t *testing.T) {
	o := ontology.CS13()
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 700, Seed: 9}).All()
	want := computeWith(o, "x", mats, []int{0, len(mats)})
	for _, bounds := range [][]int{
		{0, 100, len(mats)},
		{0, 233, 466, len(mats)},
		{0, 1, 2, 3, len(mats)},
	} {
		got := computeWith(o, "x", mats, bounds)
		assertReportsEqual(t, got, want)
	}
}
