package coverage

import (
	"fmt"
	"math/rand"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
)

// randomMaterials draws random classification sets over the real PDC12
// ontology.
func randomMaterials(seed int64, n int) []*material.Material {
	r := rand.New(rand.NewSource(seed))
	entries := ontology.PDC12().Classifiable()
	var mats []*material.Material
	for i := 0; i < n; i++ {
		m := &material.Material{
			ID: fmt.Sprintf("r%d", i), Title: "R", Kind: material.Assignment, Level: material.CS1,
		}
		seen := map[string]bool{}
		for j, k := 0, 1+r.Intn(6); j < k; j++ {
			id := entries[r.Intn(len(entries))]
			if seen[id] {
				continue
			}
			seen[id] = true
			m.Classifications = append(m.Classifications, material.Classification{NodeID: id})
		}
		mats = append(mats, m)
	}
	return mats
}

// TestQuickCoverageInvariants checks, over random corpora:
//  1. Subtree counts are monotone non-increasing down any root-to-leaf path.
//  2. The root subtree count equals the number of materials with at least
//     one in-ontology classification.
//  3. Pairs at a node equal direct pairs there plus the children's pairs.
//  4. Direct counts are only non-zero on classifiable nodes.
func TestQuickCoverageInvariants(t *testing.T) {
	o := ontology.PDC12()
	for seed := int64(0); seed < 40; seed++ {
		mats := randomMaterials(seed, 1+int(seed)%30)
		r := Compute(o, "rand", mats)

		classified := 0
		for _, m := range mats {
			if len(m.ClassificationIDs()) > 0 {
				classified++
			}
		}
		if r.Subtree[o.RootID()] != classified {
			t.Fatalf("seed %d: root subtree %d != classified %d", seed, r.Subtree[o.RootID()], classified)
		}
		o.Walk(o.RootID(), func(n *ontology.Node, _ int) bool {
			for _, kid := range o.Children(n.ID) {
				if r.Subtree[kid] > r.Subtree[n.ID] {
					t.Fatalf("seed %d: subtree not monotone at %q", seed, kid)
				}
			}
			sum := r.Direct[n.ID]
			for _, kid := range o.Children(n.ID) {
				sum += r.Pairs[kid]
			}
			if r.Pairs[n.ID] != sum {
				t.Fatalf("seed %d: pairs at %q = %d, direct+children = %d", seed, n.ID, r.Pairs[n.ID], sum)
			}
			if r.Direct[n.ID] > 0 && !n.Kind.Classifiable() {
				t.Fatalf("seed %d: direct count on structural %q", seed, n.ID)
			}
			return true
		})
		// CoveredEntries is consistent with Direct.
		cov, tot := r.CoveredEntries(o.RootID())
		direct := 0
		for _, n := range r.Direct {
			if n > 0 {
				direct++
			}
		}
		if cov != direct || tot != len(o.Classifiable()) {
			t.Fatalf("seed %d: covered %d/%d vs direct %d", seed, cov, tot, direct)
		}
		// Intensity bounded in [0,1].
		for _, id := range o.IDs() {
			if x := r.Intensity(id); x < 0 || x > 1 {
				t.Fatalf("seed %d: intensity %v at %q", seed, x, id)
			}
		}
	}
}

// TestQuickGapsPartition: gaps are maximal, disjoint, and exactly cover the
// uncovered classifiable entries.
func TestQuickGapsPartition(t *testing.T) {
	o := ontology.PDC12()
	for seed := int64(0); seed < 30; seed++ {
		mats := randomMaterials(seed+100, 1+int(seed)%20)
		r := Compute(o, "rand", mats)
		gaps := r.Gaps(o.RootID())
		inGap := make(map[string]bool)
		for _, g := range gaps {
			if r.Covered(g.NodeID) {
				t.Fatalf("seed %d: gap %q is covered", seed, g.NodeID)
			}
			if p := o.Parent(g.NodeID); p != "" && !r.Covered(p) {
				t.Fatalf("seed %d: gap %q not maximal (parent uncovered too)", seed, g.NodeID)
			}
			count := 0
			o.Walk(g.NodeID, func(n *ontology.Node, _ int) bool {
				if n.Kind.Classifiable() {
					if inGap[n.ID] {
						t.Fatalf("seed %d: entry %q in two gaps", seed, n.ID)
					}
					inGap[n.ID] = true
					count++
				}
				return true
			})
			if count != g.Entries {
				t.Fatalf("seed %d: gap %q entries %d != walked %d", seed, g.NodeID, g.Entries, count)
			}
		}
		// Every uncovered classifiable entry is inside exactly one gap.
		for _, id := range o.Classifiable() {
			uncovered := r.Direct[id] == 0
			if uncovered != inGap[id] {
				// A directly-uncovered entry may still sit under a
				// covered ancestor chain with covered siblings; it
				// must then be its own gap (or inside one).
				t.Fatalf("seed %d: entry %q uncovered=%v inGap=%v", seed, id, uncovered, inGap[id])
			}
		}
	}
}

// TestQuickAlignmentProperties: alignment is symmetric, bounded, 1 on self
// (when non-empty), and 0 against an empty report.
func TestQuickAlignmentProperties(t *testing.T) {
	o := ontology.CS13()
	a := Compute(o, "A", corpus.Nifty().All())
	bb := Compute(o, "B", corpus.Peachy().All())
	empty := Compute(o, "E", nil)
	if Alignment(a, bb) != Alignment(bb, a) {
		t.Error("alignment not symmetric")
	}
	if x := Alignment(a, bb); x < 0 || x > 1 {
		t.Errorf("alignment out of range: %v", x)
	}
	if Alignment(a, a) != 1 {
		t.Error("self alignment != 1")
	}
	if Alignment(a, empty) != 0 {
		t.Error("alignment with empty != 0")
	}
}
