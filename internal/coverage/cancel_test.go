package coverage

import (
	"context"
	"errors"
	"testing"
	"time"

	"carcs/internal/corpus"
	"carcs/internal/ontology"
)

func TestComputeCtxCancelledReturnsPromptly(t *testing.T) {
	mats := corpus.Synthetic(corpus.SyntheticOptions{N: 20000, Seed: 3}).All()
	o := ontology.CS13()

	// Sanity: the healthy path still works on the same corpus.
	if _, err := ComputeCtx(context.Background(), o, "x", mats); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	rep, err := ComputeCtx(ctx, o, "x", mats)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Fatal("cancelled compute returned a report")
	}
	// A 20k-material scan takes far longer than the bail-out path; the
	// bound is generous to absorb CI scheduling noise.
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("cancelled compute took %v, want prompt return", d)
	}
}
