package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// waitState polls until the job reaches a terminal state or the deadline
// passes.
func waitState(t *testing.T, j *Job, want State) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if s := j.State(); s == want {
			return
		} else if s.Terminal() {
			t.Fatalf("job reached %s, want %s (err=%v)", s, want, j.Err())
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job stuck in %s, want %s", j.State(), want)
}

func TestJobLifecycleDone(t *testing.T) {
	r := NewRunner(2, 4)
	defer r.Close(context.Background())
	j, err := r.Submit("test", "adds three", func(ctx context.Context, job *Job) error {
		job.SetTotal(3)
		for i := 0; i < 3; i++ {
			job.AddOK()
		}
		job.SetResult(map[string]int{"n": 3})
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	snap := j.Snapshot()
	if snap.Progress.OK != 3 || snap.Progress.Total != 3 {
		t.Errorf("progress = %+v", snap.Progress)
	}
	if snap.Result == nil || snap.Started == nil || snap.Finished == nil {
		t.Errorf("snapshot incomplete: %+v", snap)
	}
}

func TestJobFailure(t *testing.T) {
	r := NewRunner(1, 2)
	defer r.Close(context.Background())
	boom := errors.New("boom")
	j, err := r.Submit("test", "", func(ctx context.Context, job *Job) error {
		job.AddFailed()
		job.ReportItemError(ItemError{Index: 0, Err: "boom"})
		return boom
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateFailed)
	if !errors.Is(j.Err(), boom) {
		t.Errorf("err = %v", j.Err())
	}
	if snap := j.Snapshot(); len(snap.ItemErrors) != 1 || snap.Error == "" {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestCancelRunningJob(t *testing.T) {
	r := NewRunner(1, 2)
	defer r.Close(context.Background())
	started := make(chan struct{})
	j, err := r.Submit("test", "", func(ctx context.Context, job *Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if err := r.Cancel(j.ID()); err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateCancelled)
	if err := r.Cancel(j.ID()); !errors.Is(err, ErrFinished) {
		t.Errorf("second cancel = %v", err)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	r := NewRunner(1, 4)
	defer r.Close(context.Background())
	release := make(chan struct{})
	blocker, err := r.Submit("test", "blocker", func(ctx context.Context, job *Job) error {
		<-release
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, blocker, StateRunning)
	ran := false
	queued, err := r.Submit("test", "queued", func(ctx context.Context, job *Job) error {
		ran = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Cancel(queued.ID()); err != nil {
		t.Fatal(err)
	}
	if s := queued.State(); s != StateCancelled {
		t.Fatalf("queued job state = %s", s)
	}
	close(release)
	waitState(t, blocker, StateDone)
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("cancelled queued job still ran")
	}
}

func TestQueueBackpressure(t *testing.T) {
	r := NewRunner(1, 1)
	defer r.Close(context.Background())
	release := make(chan struct{})
	defer close(release)
	block := func(ctx context.Context, job *Job) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}
	running, err := r.Submit("test", "", block)
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, running, StateRunning)
	if _, err := r.Submit("test", "", block); err != nil { // fills the queue
		t.Fatal(err)
	}
	if _, err := r.Submit("test", "", block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit = %v", err)
	}
}

func TestCloseDrains(t *testing.T) {
	r := NewRunner(2, 8)
	var mu sync.Mutex
	done := 0
	for i := 0; i < 6; i++ {
		if _, err := r.Submit("test", fmt.Sprint(i), func(ctx context.Context, job *Job) error {
			time.Sleep(5 * time.Millisecond)
			mu.Lock()
			done++
			mu.Unlock()
			return nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if done != 6 {
		t.Errorf("drained %d of 6 jobs", done)
	}
	if _, err := r.Submit("test", "", func(context.Context, *Job) error { return nil }); !errors.Is(err, ErrClosed) {
		t.Errorf("submit after close = %v", err)
	}
}

func TestCloseTimeoutCancelsJobs(t *testing.T) {
	r := NewRunner(1, 2)
	started := make(chan struct{})
	j, err := r.Submit("test", "", func(ctx context.Context, job *Job) error {
		close(started)
		<-ctx.Done() // only stops when the runner force-cancels
		return ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := r.Close(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("close = %v", err)
	}
	waitState(t, j, StateCancelled)
}

func TestStats(t *testing.T) {
	r := NewRunner(2, 4)
	defer r.Close(context.Background())
	j, err := r.Submit("test", "", func(context.Context, *Job) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, j, StateDone)
	st := r.Stats()
	if st.Workers != 2 || st.QueueCap != 4 || st.Completed != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestItemErrorReportBounded(t *testing.T) {
	j := &Job{state: StateRunning}
	for i := 0; i < maxItemErrors+50; i++ {
		j.ReportItemError(ItemError{Index: i, Err: "x"})
	}
	snap := j.Snapshot()
	if len(snap.ItemErrors) != maxItemErrors || snap.ErrorsDropped != 50 {
		t.Errorf("errors = %d dropped = %d", len(snap.ItemErrors), snap.ErrorsDropped)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	p := RetryPolicy{Attempts: 5, Base: time.Microsecond, Transient: func(error) bool { return true }}
	calls := 0
	attempts, err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 || calls != 3 {
		t.Errorf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryStopsOnPermanentError(t *testing.T) {
	perm := errors.New("permanent")
	p := RetryPolicy{Attempts: 5, Base: time.Microsecond, Transient: func(err error) bool { return err.Error() == "transient" }}
	calls := 0
	attempts, err := p.Do(context.Background(), func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || attempts != 1 || calls != 1 {
		t.Errorf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: time.Microsecond, Jitter: 0.5, Transient: func(error) bool { return true }}
	calls := 0
	attempts, err := p.Do(context.Background(), func() error {
		calls++
		return errors.New("always")
	})
	if err == nil || attempts != 3 || calls != 3 {
		t.Errorf("attempts=%d calls=%d err=%v", attempts, calls, err)
	}
}

func TestRetryHonorsCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := RetryPolicy{Attempts: 100, Base: 10 * time.Second, Transient: func(error) bool { return true }}
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := p.Do(ctx, func() error { return errors.New("transient") })
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v", err)
	}
}
