// Package jobs is a generic background-job runner: a fixed worker pool
// executing long-running tasks (bulk imports, re-classification sweeps)
// off the request path. The companion classification paper argues CAR-CS
// only becomes useful once large corpora can be processed at scale; this
// package is the execution substrate for that — submission returns
// immediately with a job handle, progress is observable while the job
// runs, and jobs can be cancelled or drained gracefully on shutdown.
//
// Design points:
//
//   - The submission queue is bounded. When it fills, Submit fails fast
//     with ErrQueueFull instead of buffering without limit — backpressure
//     the HTTP layer translates into 503.
//   - Progress counters are atomics, so a job's workers can update them
//     from any goroutine while pollers read them lock-free. They only
//     ever increase: observed progress is monotone.
//   - Every job runs under a context cancelled by Cancel, by runner
//     shutdown, or never. Job functions are expected to stop between
//     items, leaving whatever they committed so far intact.
//   - Close drains: no new submissions, queued jobs still run, and the
//     call blocks until in-flight work finishes or its context expires
//     (then jobs are cancelled and awaited).
package jobs

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// State is a job's lifecycle position.
type State string

// Job lifecycle states. Queued and Running are live; the other three are
// terminal.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Errors returned by Submit and Cancel.
var (
	// ErrQueueFull means the bounded submission queue is at capacity;
	// callers should retry later (HTTP 503 with Retry-After).
	ErrQueueFull = errors.New("jobs: submission queue full")
	// ErrClosed means the runner is shutting down and accepts no new work.
	ErrClosed = errors.New("jobs: runner closed")
	// ErrNotFound means no job has the given ID.
	ErrNotFound = errors.New("jobs: no such job")
	// ErrFinished means the job already reached a terminal state.
	ErrFinished = errors.New("jobs: job already finished")
)

// Progress tracks per-item counters for a job. All methods are safe for
// concurrent use; counters only increase, so values read while the job
// runs are monotone snapshots.
type Progress struct {
	total   atomic.Int64
	ok      atomic.Int64
	failed  atomic.Int64
	skipped atomic.Int64
}

// SetTotal records the expected item count once it is known (0 = unknown).
func (p *Progress) SetTotal(n int64) { p.total.Store(n) }

// AddTotal grows the expected item count as a streaming producer discovers
// more items.
func (p *Progress) AddTotal(n int64) { p.total.Add(n) }

// AddOK counts one successfully processed item.
func (p *Progress) AddOK() { p.ok.Add(1) }

// AddFailed counts one item that errored terminally.
func (p *Progress) AddFailed() { p.failed.Add(1) }

// AddSkipped counts one item deliberately not processed (e.g. duplicate).
func (p *Progress) AddSkipped() { p.skipped.Add(1) }

// Counts returns (total, ok, failed, skipped).
func (p *Progress) Counts() (total, ok, failed, skipped int64) {
	return p.total.Load(), p.ok.Load(), p.failed.Load(), p.skipped.Load()
}

// ProgressCounts is the JSON form of a progress snapshot.
type ProgressCounts struct {
	Total   int64 `json:"total"`
	OK      int64 `json:"ok"`
	Failed  int64 `json:"failed"`
	Skipped int64 `json:"skipped"`
}

// Done reports total done items (ok + failed + skipped).
func (pc ProgressCounts) Done() int64 { return pc.OK + pc.Failed + pc.Skipped }

// ItemError is one per-item failure recorded in the job's error report.
type ItemError struct {
	// Index is the item's position in the input (0-based).
	Index int `json:"index"`
	// Item identifies the item, when known (e.g. a material ID).
	Item string `json:"item,omitempty"`
	// Err is the failure message.
	Err string `json:"error"`
	// Attempts is how many tries were made, >1 when retried.
	Attempts int `json:"attempts,omitempty"`
}

// maxItemErrors bounds a job's per-item error report so a pathological
// input (every line broken) cannot grow memory without limit.
const maxItemErrors = 100

// Fn is the body of a job. It must return promptly once ctx is cancelled,
// leaving partial progress consistent (whatever it committed stays; the
// in-flight item is either fully applied or not at all). A nil return
// marks the job done; ctx.Err() marks it cancelled; anything else failed.
type Fn func(ctx context.Context, job *Job) error

// Job is one unit of background work.
type Job struct {
	// Progress counters, updated by the job function as it works.
	Progress

	id    int64
	kind  string
	label string
	fn    Fn

	// ctx is created at submission as a child of the runner's base
	// context, so both Cancel and runner teardown stop the job.
	ctx    context.Context
	cancel context.CancelFunc

	mu         sync.Mutex
	state      State
	err        error
	result     any
	itemErrs   []ItemError
	errDropped int
	created    time.Time
	started    time.Time
	finished   time.Time
}

// ID returns the job's runner-unique ID.
func (j *Job) ID() int64 { return j.id }

// Kind returns the job's type tag (e.g. "import").
func (j *Job) Kind() string { return j.kind }

// State returns the job's current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Err returns the job's terminal error, nil while live or done.
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// SetResult attaches a job-specific summary made visible to pollers once
// set; the job function calls it before returning.
func (j *Job) SetResult(v any) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.result = v
}

// Result returns the value set by SetResult, or nil.
func (j *Job) Result() any {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result
}

// ReportItemError appends one failure to the job's bounded error report.
func (j *Job) ReportItemError(e ItemError) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if len(j.itemErrs) >= maxItemErrors {
		j.errDropped++
		return
	}
	j.itemErrs = append(j.itemErrs, e)
}

// Snapshot is a point-in-time JSON-ready view of a job.
type Snapshot struct {
	ID         int64          `json:"id"`
	Kind       string         `json:"kind"`
	Label      string         `json:"label,omitempty"`
	State      State          `json:"state"`
	Progress   ProgressCounts `json:"progress"`
	Error      string         `json:"error,omitempty"`
	Result     any            `json:"result,omitempty"`
	ItemErrors []ItemError    `json:"item_errors,omitempty"`
	// ErrorsDropped counts item errors beyond the report cap.
	ErrorsDropped int        `json:"errors_dropped,omitempty"`
	Created       time.Time  `json:"created"`
	Started       *time.Time `json:"started,omitempty"`
	Finished      *time.Time `json:"finished,omitempty"`
	// Duration is wall time from start to finish (or to now while
	// running), in seconds, for dashboards.
	Seconds float64 `json:"seconds,omitempty"`
}

// Snapshot captures the job's current state for serving over the API.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	t, ok, failed, skipped := j.Counts()
	s := Snapshot{
		ID:    j.id,
		Kind:  j.kind,
		Label: j.label,
		State: j.state,
		Progress: ProgressCounts{
			Total: t, OK: ok, Failed: failed, Skipped: skipped,
		},
		Result:        j.result,
		ItemErrors:    append([]ItemError(nil), j.itemErrs...),
		ErrorsDropped: j.errDropped,
		Created:       j.created,
	}
	if j.err != nil {
		s.Error = j.err.Error()
	}
	if !j.started.IsZero() {
		st := j.started
		s.Started = &st
		end := time.Now()
		if !j.finished.IsZero() {
			fin := j.finished
			s.Finished = &fin
			end = fin
		}
		s.Seconds = end.Sub(st).Seconds()
	}
	return s
}

// transition moves the job to a new state if it is still live, returning
// whether the move happened.
func (j *Job) transition(to State) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	switch to {
	case StateRunning:
		j.started = time.Now()
	case StateDone, StateFailed, StateCancelled:
		j.finished = time.Now()
	}
	j.state = to
	return true
}

// Stats summarizes the runner for the health endpoint.
type Stats struct {
	// Workers is the pool size.
	Workers int `json:"workers"`
	// QueueCap and QueueLen describe the bounded submission queue.
	QueueCap int `json:"queue_cap"`
	QueueLen int `json:"queue_len"`
	// Running / Queued / Completed / Failed / Cancelled count jobs by
	// state over the runner's lifetime (completed states are cumulative).
	Running   int `json:"running"`
	Queued    int `json:"queued"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Admission reserves capacity for one job about to run and returns a
// release function to call when it finishes. Errors mean "no capacity
// right now"; the worker backs off and retries, yielding to foreground
// work instead of failing the job.
type Admission func(ctx context.Context) (release func(), err error)

// Runner executes jobs on a fixed worker pool fed by a bounded queue.
type Runner struct {
	queue   chan *Job
	workers int

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	jobs   map[int64]*Job
	order  []int64
	nextID int64
	closed bool
	admit  Admission

	wg sync.WaitGroup
}

// NewRunner starts a runner with the given worker-pool size and submission
// queue depth. Zero (or negative) workers defaults to GOMAXPROCS; zero
// queue depth defaults to 4x the worker count.
func NewRunner(workers, queueDepth int) *Runner {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if queueDepth <= 0 {
		queueDepth = 4 * workers
	}
	ctx, cancel := context.WithCancel(context.Background())
	r := &Runner{
		queue:      make(chan *Job, queueDepth),
		workers:    workers,
		baseCtx:    ctx,
		baseCancel: cancel,
		jobs:       make(map[int64]*Job),
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.work()
	}
	return r
}

// Submit enqueues a job. It never blocks: a full queue returns
// ErrQueueFull immediately so callers can apply backpressure upstream.
func (r *Runner) Submit(kind, label string, fn Fn) (*Job, error) {
	if fn == nil {
		return nil, fmt.Errorf("jobs: nil job function")
	}
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil, ErrClosed
	}
	r.nextID++
	ctx, cancel := context.WithCancel(r.baseCtx)
	j := &Job{
		id:      r.nextID,
		kind:    kind,
		label:   label,
		fn:      fn,
		ctx:     ctx,
		cancel:  cancel,
		state:   StateQueued,
		created: time.Now(),
	}
	// Reserve the queue slot while still holding the lock, so a competing
	// Close cannot close the channel between registration and send.
	select {
	case r.queue <- j:
	default:
		r.mu.Unlock()
		cancel()
		return nil, ErrQueueFull
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.mu.Unlock()
	return j, nil
}

// Job returns the job with the given ID, or ErrNotFound.
func (r *Runner) Job(id int64) (*Job, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	j, ok := r.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return j, nil
}

// Jobs returns snapshots of all known jobs, newest first.
func (r *Runner) Jobs() []Snapshot {
	r.mu.Lock()
	ids := append([]int64(nil), r.order...)
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		jobs = append(jobs, r.jobs[id])
	}
	r.mu.Unlock()
	out := make([]Snapshot, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Snapshot())
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID > out[k].ID })
	return out
}

// Cancel requests cancellation of a live job. A queued job is marked
// cancelled immediately (the worker discards it on dequeue); a running job
// has its context cancelled and transitions once its function returns.
func (r *Runner) Cancel(id int64) error {
	j, err := r.Job(id)
	if err != nil {
		return err
	}
	j.mu.Lock()
	state := j.state
	if state.Terminal() {
		j.mu.Unlock()
		return ErrFinished
	}
	if state == StateQueued {
		// Not yet picked up: finalize here; the worker skips it later.
		j.state = StateCancelled
		j.err = context.Canceled
		j.finished = time.Now()
	}
	j.mu.Unlock()
	j.cancel()
	return nil
}

// Stats returns a point-in-time summary for /api/health.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	st := Stats{
		Workers:  r.workers,
		QueueCap: cap(r.queue),
		QueueLen: len(r.queue),
	}
	for _, j := range r.jobs {
		switch j.State() {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Completed++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// SetAdmission installs a capacity gate the workers pass through before
// each job runs — how background work is subordinated to an overload
// controller. Pass nil to detach. Call before jobs are submitted.
func (r *Runner) SetAdmission(a Admission) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.admit = a
}

// admitJob blocks until the admission gate grants capacity for the job,
// retrying with a short backoff while the system is overloaded. A nil
// release means the job's context died while waiting; the worker still
// runs the job function, which observes the cancellation immediately.
func (r *Runner) admitJob(j *Job) func() {
	r.mu.Lock()
	admit := r.admit
	r.mu.Unlock()
	if admit == nil {
		return nil
	}
	for {
		release, err := admit(j.ctx)
		if err == nil {
			return release
		}
		select {
		case <-j.ctx.Done():
			return nil
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// work is one pool worker: dequeue, run, finalize, repeat until the queue
// closes.
func (r *Runner) work() {
	defer r.wg.Done()
	for j := range r.queue {
		if !j.transition(StateRunning) {
			continue // cancelled while queued
		}
		release := r.admitJob(j)
		err := j.fn(j.ctx, j)
		if release != nil {
			release()
		}
		cancelled := j.ctx.Err() != nil
		j.cancel()
		r.finalize(j, cancelled, err)
	}
}

// finalize records the job's terminal state from its return error.
func (r *Runner) finalize(j *Job, cancelled bool, err error) {
	switch {
	case err == nil:
		j.transition(StateDone)
	case errors.Is(err, context.Canceled) || cancelled:
		j.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateCancelled
			j.err = err
			j.finished = time.Now()
		}
		j.mu.Unlock()
	default:
		j.mu.Lock()
		if !j.state.Terminal() {
			j.state = StateFailed
			j.err = err
			j.finished = time.Now()
		}
		j.mu.Unlock()
	}
}

// Close shuts the runner down gracefully: new submissions are refused,
// already queued jobs still execute, and Close blocks until all work
// drains. If ctx expires first, every live job is cancelled and Close
// waits (briefly) for the workers to observe it. The returned error is
// ctx.Err() when the drain was cut short.
func (r *Runner) Close(ctx context.Context) error {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return nil
	}
	r.closed = true
	close(r.queue)
	r.mu.Unlock()

	done := make(chan struct{})
	go func() {
		r.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// Hard stop: cancel everything and wait for the workers to
		// notice. Job functions stop between items, so this terminates.
		r.baseCancel()
		<-done
		return ctx.Err()
	}
}
