package jobs

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy retries transient per-item failures with exponential backoff
// and jitter. Bulk ingestion uses it around each item's commit so a blip
// (a briefly contended resource, an injected fault) costs one item a few
// retries, not the whole job.
type RetryPolicy struct {
	// Attempts is the maximum number of tries (first call included).
	// Values below 1 mean a single attempt, i.e. no retry.
	Attempts int
	// Base is the delay before the first retry; each further retry
	// doubles it. Zero defaults to 10ms.
	Base time.Duration
	// Max caps the backoff delay. Zero defaults to 2s.
	Max time.Duration
	// Jitter in [0,1] randomizes each delay by ±Jitter/2 of its value,
	// de-synchronizing retry storms across workers. Zero means none.
	Jitter float64
	// Transient reports whether an error is worth retrying. Nil means no
	// error is transient — deterministic failures (validation, duplicate
	// IDs) must not burn retry budget.
	Transient func(error) bool
}

// DefaultRetry is the ingestion default: three tries with 25ms base
// backoff and 25% jitter. Transient is left nil; callers choose what
// qualifies.
var DefaultRetry = RetryPolicy{Attempts: 3, Base: 25 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.25}

// Do runs fn until it succeeds, exhausts the attempt budget, fails
// non-transiently, or ctx is cancelled. It returns the attempt count and
// the final error (nil on success; ctx.Err() on cancellation).
func (p RetryPolicy) Do(ctx context.Context, fn func() error) (attempts int, err error) {
	budget := p.Attempts
	if budget < 1 {
		budget = 1
	}
	base := p.Base
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	maxDelay := p.Max
	if maxDelay <= 0 {
		maxDelay = 2 * time.Second
	}
	for attempts = 1; ; attempts++ {
		if err = ctx.Err(); err != nil {
			return attempts - 1, err
		}
		if err = fn(); err == nil {
			return attempts, nil
		}
		if attempts >= budget || p.Transient == nil || !p.Transient(err) {
			return attempts, err
		}
		delay := base << (attempts - 1)
		if delay > maxDelay || delay <= 0 { // <=0 guards shift overflow
			delay = maxDelay
		}
		if p.Jitter > 0 {
			// Spread the delay across [1-J/2, 1+J/2] of its nominal value.
			f := 1 + p.Jitter*(rand.Float64()-0.5)
			delay = time.Duration(float64(delay) * f)
		}
		t := time.NewTimer(delay)
		select {
		case <-ctx.Done():
			t.Stop()
			return attempts, ctx.Err()
		case <-t.C:
		}
	}
}
