package classify

import (
	"fmt"

	"carcs/internal/material"
)

// Quality is the evaluation of a suggester against hand-curated labels.
type Quality struct {
	Suggester string
	// PrecisionAtK is the mean fraction of the top-k suggestions that
	// appear in the material's hand-curated classification set.
	PrecisionAtK float64
	// RecallAtK is the mean fraction of hand labels found in the top k.
	RecallAtK float64
	// HitRate is the fraction of materials with at least one correct
	// suggestion in the top k.
	HitRate float64
	K       int
	N       int
}

// Evaluate scores a suggester over materials with hand labels, restricted to
// labels inside the suggester's ontology (callers pass the entry-membership
// test). Materials with no in-ontology labels are skipped.
func Evaluate(s Suggester, mats []*material.Material, inOntology func(string) bool, k int) Quality {
	q := Quality{Suggester: s.Name(), K: k}
	var sumP, sumR float64
	for _, m := range mats {
		truth := make(map[string]bool)
		for _, id := range m.ClassificationIDs() {
			if inOntology(id) {
				truth[id] = true
			}
		}
		if len(truth) == 0 {
			continue
		}
		sugg := SuggestForMaterial(s, m, k)
		if len(sugg) == 0 {
			q.N++
			continue
		}
		hits := 0
		for _, sg := range sugg {
			if truth[sg.NodeID] {
				hits++
			}
		}
		sumP += float64(hits) / float64(len(sugg))
		sumR += float64(hits) / float64(len(truth))
		if hits > 0 {
			q.HitRate++
		}
		q.N++
	}
	if q.N > 0 {
		q.PrecisionAtK = sumP / float64(q.N)
		q.RecallAtK = sumR / float64(q.N)
		q.HitRate /= float64(q.N)
	}
	return q
}

// EvaluateLeaveOneOut evaluates a trainable suggester (naive Bayes) fairly:
// for each material, the model is trained on every other material, then
// asked to suggest for the held-out one. newModel must return a fresh
// trainable suggester.
func EvaluateLeaveOneOut(newModel func() *Bayes, mats []*material.Material, inOntology func(string) bool, k int) Quality {
	q := Quality{K: k}
	var sumP, sumR float64
	for i, m := range mats {
		truth := make(map[string]bool)
		for _, id := range m.ClassificationIDs() {
			if inOntology(id) {
				truth[id] = true
			}
		}
		if len(truth) == 0 {
			continue
		}
		model := newModel()
		for j, other := range mats {
			if j != i {
				model.Train(other)
			}
		}
		q.Suggester = model.Name() + " (leave-one-out)"
		sugg := SuggestForMaterial(model, m, k)
		hits := 0
		for _, sg := range sugg {
			if truth[sg.NodeID] {
				hits++
			}
		}
		if len(sugg) > 0 {
			sumP += float64(hits) / float64(len(sugg))
		}
		sumR += float64(hits) / float64(len(truth))
		if hits > 0 {
			q.HitRate++
		}
		q.N++
	}
	if q.N > 0 {
		q.PrecisionAtK = sumP / float64(q.N)
		q.RecallAtK = sumR / float64(q.N)
		q.HitRate /= float64(q.N)
	}
	return q
}

// String renders the quality line used by EXPERIMENTS.md.
func (q Quality) String() string {
	return fmt.Sprintf("%-28s P@%d=%.3f R@%d=%.3f hit=%.3f (n=%d)",
		q.Suggester, q.K, q.PrecisionAtK, q.K, q.RecallAtK, q.HitRate, q.N)
}
