package classify

import (
	"sort"

	"carcs/internal/material"
	"carcs/internal/pmap"
)

// CoOccurrence mines association rules between classification entries from
// an already-classified corpus, implementing the paper's closing suggestion:
// "once enough materials are classified, we would be able to leverage
// existing classification to provide recommendation on topics commonly used
// together." Counts live in persistent maps, so Snap freezes the miner in
// O(1) and reads work identically on live miners and snapshots.
type CoOccurrence struct {
	// count[a] = number of materials tagged a; pair[a][b] = number tagged
	// both a and b.
	count *pmap.Map[string, int]
	pair  *pmap.Map[string, *pmap.Map[string, int]]
	n     int
}

// NewCoOccurrence mines the rules from the given materials.
func NewCoOccurrence(mats []*material.Material) *CoOccurrence {
	c := &CoOccurrence{
		count: pmap.NewStrings[int](),
		pair:  pmap.NewStrings[*pmap.Map[string, int]](),
	}
	for _, m := range mats {
		c.Observe(m)
	}
	return c
}

// Snap returns an immutable snapshot of the miner at its current version;
// later Observe/Forget calls on the live miner do not affect it.
func (c *CoOccurrence) Snap() *CoOccurrence {
	cp := *c
	return &cp
}

// Observe folds one material into the mined rules incrementally — a single
// insert costs O(classifications²), not a full corpus rescan.
func (c *CoOccurrence) Observe(m *material.Material) {
	ids := m.ClassificationIDs()
	cb := c.count.Builder()
	for _, a := range ids {
		cb.Set(a, cb.GetOr(a, 0)+1)
	}
	c.count = cb.Map()
	pb := c.pair.Builder()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			bump(pb, a, b)
			bump(pb, b, a)
		}
	}
	c.pair = pb.Map()
	c.n++
}

// ObserveBatch folds a batch of materials in one builder session per count
// map, equivalent to calling Observe for each in order; see Bayes.TrainTermsBatch.
func (c *CoOccurrence) ObserveBatch(ms []*material.Material) {
	cb := c.count.Builder()
	pb := c.pair.Builder()
	// Inner per-entry pair-count builders stay open across the batch; see
	// Bayes.TrainTermsBatch.
	inner := make(map[string]*pmap.Builder[string, int])
	get := func(a string) *pmap.Builder[string, int] {
		ib := inner[a]
		if ib == nil {
			m := pb.GetOr(a, nil)
			if m == nil {
				m = pmap.NewStrings[int]()
			}
			ib = m.Builder()
			inner[a] = ib
		}
		return ib
	}
	for _, m := range ms {
		ids := m.ClassificationIDs()
		for _, a := range ids {
			cb.Set(a, cb.GetOr(a, 0)+1)
		}
		for i, a := range ids {
			for _, b := range ids[i+1:] {
				ib := get(a)
				ib.Set(b, ib.GetOr(b, 0)+1)
				ib = get(b)
				ib.Set(a, ib.GetOr(a, 0)+1)
			}
		}
		c.n++
	}
	for a, ib := range inner {
		pb.Set(a, ib.Map())
	}
	c.count = cb.Map()
	c.pair = pb.Map()
}

// Forget removes a previously observed material — the exact inverse of
// Observe, so remove/reclassify flows can keep a long-lived miner current.
// Forgetting a material that was never observed corrupts the counts.
func (c *CoOccurrence) Forget(m *material.Material) {
	ids := m.ClassificationIDs()
	cb := c.count.Builder()
	for _, a := range ids {
		if n := cb.GetOr(a, 0) - 1; n <= 0 {
			cb.Delete(a)
		} else {
			cb.Set(a, n)
		}
	}
	c.count = cb.Map()
	pb := c.pair.Builder()
	for i, a := range ids {
		for _, b := range ids[i+1:] {
			drop(pb, a, b)
			drop(pb, b, a)
		}
	}
	c.pair = pb.Map()
	if c.n > 0 {
		c.n--
	}
}

func bump(pb *pmap.Builder[string, *pmap.Map[string, int]], a, b string) {
	m := pb.GetOr(a, nil)
	if m == nil {
		m = pmap.NewStrings[int]()
	}
	pb.Set(a, m.Set(b, m.GetOr(b, 0)+1))
}

func drop(pb *pmap.Builder[string, *pmap.Map[string, int]], a, b string) {
	m := pb.GetOr(a, nil)
	if m == nil {
		return
	}
	if n := m.GetOr(b, 0) - 1; n <= 0 {
		if m = m.Delete(b); m.Len() == 0 {
			pb.Delete(a)
		} else {
			pb.Set(a, m)
		}
	} else {
		pb.Set(a, m.Set(b, n))
	}
}

// Rule is one association rule "materials tagged Given are often also
// tagged Then".
type Rule struct {
	Given, Then string
	// Support is the fraction of all materials carrying both entries.
	Support float64
	// Confidence is P(Then | Given).
	Confidence float64
	// Count is the number of materials carrying both.
	Count int
}

// Rules returns rules from the given entry with at least minCount joint
// occurrences, ordered by confidence then support.
func (c *CoOccurrence) Rules(given string, minCount int) []Rule {
	if minCount < 1 {
		minCount = 1
	}
	base := c.count.GetOr(given, 0)
	if base == 0 {
		return nil
	}
	var out []Rule
	c.pair.GetOr(given, nil).Range(func(then string, joint int) bool {
		if joint < minCount {
			return true
		}
		out = append(out, Rule{
			Given: given, Then: then,
			Support:    float64(joint) / float64(max(c.n, 1)),
			Confidence: float64(joint) / float64(base),
			Count:      joint,
		})
		return true
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		if out[i].Support != out[j].Support {
			return out[i].Support > out[j].Support
		}
		return out[i].Then < out[j].Then
	})
	return out
}

// Recommend proposes entries to add given a partially entered classification
// set: each candidate is scored by the sum of confidences of rules firing
// from the selected entries, excluding entries already selected. Returns the
// top k.
func (c *CoOccurrence) Recommend(selected []string, minCount, k int) []Rule {
	have := make(map[string]bool, len(selected))
	for _, s := range selected {
		have[s] = true
	}
	agg := make(map[string]*Rule)
	for _, s := range selected {
		for _, r := range c.Rules(s, minCount) {
			if have[r.Then] {
				continue
			}
			acc := agg[r.Then]
			if acc == nil {
				rr := r
				rr.Given = "" // aggregated over all selected entries
				agg[r.Then] = &rr
				continue
			}
			acc.Confidence += r.Confidence
			acc.Support += r.Support
			acc.Count += r.Count
		}
	}
	out := make([]Rule, 0, len(agg))
	for _, r := range agg {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Confidence != out[j].Confidence {
			return out[i].Confidence > out[j].Confidence
		}
		return out[i].Then < out[j].Then
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
