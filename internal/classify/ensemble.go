package classify

import (
	"context"
	"sort"
)

// Ensemble combines several suggesters with reciprocal-rank fusion: each
// member votes for entries by rank, and entries accumulate 1/(k0 + rank)
// across members. Fusion is robust to the members' incomparable score
// scales (keyword overlap, cosine, Bayes posteriors) and lets a trained
// model sharpen the training-free ones without being able to veto them.
type Ensemble struct {
	members []Suggester
	// K0 is the fusion constant; 60 is the standard choice, smaller
	// values weight top ranks more heavily.
	K0 float64
	// Pool is how many suggestions each member contributes; defaults to
	// 3x the requested k.
	Pool int
}

// NewEnsemble builds an ensemble over the given members.
func NewEnsemble(members ...Suggester) *Ensemble {
	return &Ensemble{members: members, K0: 60}
}

// Name implements Suggester.
func (e *Ensemble) Name() string {
	name := "ensemble("
	for i, m := range e.members {
		if i > 0 {
			name += "+"
		}
		name += m.Name()
	}
	return name + ")"
}

// Suggest implements Suggester via reciprocal-rank fusion.
func (e *Ensemble) Suggest(text string, k int) []Suggestion {
	out, _ := e.SuggestCtx(context.Background(), text, k)
	return out
}

// SuggestCtx is Suggest with a cancellation check between members, so a
// shed or timed-out request pays for at most one member's scoring pass.
func (e *Ensemble) SuggestCtx(ctx context.Context, text string, k int) ([]Suggestion, error) {
	return e.fuse(ctx, k, func(m Suggester, pool int) []Suggestion {
		return m.Suggest(text, pool)
	})
}

// SuggestTermsCtx fuses the members over pre-analyzed terms. Members that
// cannot score terms directly are skipped — in practice every engine in
// the system implements TermSuggester, so this is a type-safety valve, not
// a behavior fork.
func (e *Ensemble) SuggestTermsCtx(ctx context.Context, terms []string, k int) ([]Suggestion, error) {
	return e.fuse(ctx, k, func(m Suggester, pool int) []Suggestion {
		if ts, ok := m.(TermSuggester); ok {
			return ts.SuggestTerms(terms, pool)
		}
		return nil
	})
}

func (e *Ensemble) fuse(ctx context.Context, k int, member func(Suggester, int) []Suggestion) ([]Suggestion, error) {
	pool := e.Pool
	if pool <= 0 {
		pool = 3 * k
		if pool <= 0 {
			pool = 30
		}
	}
	k0 := e.K0
	if k0 <= 0 {
		k0 = 60
	}
	scores := make(map[string]float64)
	paths := make(map[string]string)
	for _, m := range e.members {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for rank, sg := range member(m, pool) {
			scores[sg.NodeID] += 1 / (k0 + float64(rank+1))
			paths[sg.NodeID] = sg.Path
		}
	}
	out := make([]Suggestion, 0, len(scores))
	for id, s := range scores {
		out = append(out, Suggestion{NodeID: id, Path: paths[id], Score: s})
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		return out[i].NodeID < out[j].NodeID
	})
	if k > 0 && len(out) > k {
		out = out[:k]
	}
	return out, nil
}
