package classify

import (
	"math"

	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/textproc"
)

// Bayes is a multinomial naive Bayes suggester trained on already-classified
// materials: each ontology entry is a class whose training text is the
// concatenation of the texts of materials tagged with it. Once enough
// materials are classified, it learns corpus-specific vocabulary (e.g. that
// "OpenMP" signals the compiler-pragmas entry) that the training-free
// suggesters cannot.
type Bayes struct {
	o *ontology.Ontology
	// termCounts[entry][term] = occurrences in the entry's training text.
	termCounts map[string]map[string]int
	totalTerms map[string]int
	docCount   map[string]int
	trained    int
	// vocab reference-counts term occurrences across all classes so that
	// Forget can shrink the vocabulary exactly when a term's last
	// occurrence leaves the model.
	vocab map[string]int
}

// NewBayes returns an untrained model bound to the ontology.
func NewBayes(o *ontology.Ontology) *Bayes {
	return &Bayes{
		o:          o,
		termCounts: make(map[string]map[string]int),
		totalTerms: make(map[string]int),
		docCount:   make(map[string]int),
		vocab:      make(map[string]int),
	}
}

// Name implements Suggester.
func (b *Bayes) Name() string { return "naive-bayes" }

// Train adds one classified material to the model. Classifications outside
// the model's ontology are ignored.
func (b *Bayes) Train(m *material.Material) {
	terms := textproc.Terms(m.SearchText())
	trained := false
	for _, id := range m.ClassificationIDs() {
		if !b.o.Has(id) {
			continue
		}
		trained = true
		b.docCount[id]++
		tc := b.termCounts[id]
		if tc == nil {
			tc = make(map[string]int)
			b.termCounts[id] = tc
		}
		for _, t := range terms {
			tc[t]++
			b.totalTerms[id]++
			b.vocab[t]++
		}
	}
	if trained {
		b.trained++
	}
}

// Observe is Train under the name the incremental-maintenance interfaces
// use: the model absorbs one material in O(len(terms) × classifications)
// without a corpus rescan.
func (b *Bayes) Observe(m *material.Material) { b.Train(m) }

// Forget removes a previously trained material from the model — the exact
// inverse of Train, so add/remove/reclassify flows can keep a long-lived
// model current instead of retraining from scratch. Forgetting a material
// that was never trained (or whose text changed since) corrupts the counts;
// callers must pass the same material value they trained.
func (b *Bayes) Forget(m *material.Material) {
	terms := textproc.Terms(m.SearchText())
	forgot := false
	for _, id := range m.ClassificationIDs() {
		if !b.o.Has(id) {
			continue
		}
		forgot = true
		b.docCount[id]--
		tc := b.termCounts[id]
		for _, t := range terms {
			if tc != nil {
				if tc[t]--; tc[t] <= 0 {
					delete(tc, t)
				}
			}
			b.totalTerms[id]--
			if b.vocab[t]--; b.vocab[t] <= 0 {
				delete(b.vocab, t)
			}
		}
		if b.docCount[id] <= 0 {
			delete(b.docCount, id)
			delete(b.termCounts, id)
			delete(b.totalTerms, id)
		}
	}
	if forgot && b.trained > 0 {
		b.trained--
	}
}

// TrainAll trains on a whole collection.
func (b *Bayes) TrainAll(mats []*material.Material) {
	for _, m := range mats {
		b.Train(m)
	}
}

// Trained returns the number of training materials seen.
func (b *Bayes) Trained() int { return b.trained }

// Suggest implements Suggester: it scores every entry with training data by
// log P(entry) + Σ log P(term|entry) with Laplace smoothing, and returns the
// top k as suggestions. Scores are shifted so the best suggestion has score
// 1 and others fall off exponentially (comparable across queries).
func (b *Bayes) Suggest(text string, k int) []Suggestion {
	if b.trained == 0 {
		return nil
	}
	terms := textproc.Terms(text)
	if len(terms) == 0 {
		return nil
	}
	v := float64(len(b.vocab) + 1)
	var out []Suggestion
	var best float64
	first := true
	for id, tc := range b.termCounts {
		logp := math.Log(float64(b.docCount[id]) / float64(b.trained))
		denom := float64(b.totalTerms[id]) + v
		for _, t := range terms {
			logp += math.Log((float64(tc[t]) + 1) / denom)
		}
		if first || logp > best {
			best = logp
			first = false
		}
		out = append(out, Suggestion{NodeID: id, Path: b.o.Path(id), Score: logp})
	}
	// Normalize to (0, 1] with the best at 1.
	for i := range out {
		out[i].Score = math.Exp((out[i].Score - best) / float64(len(terms)))
	}
	return top(out, k)
}
