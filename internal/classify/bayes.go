package classify

import (
	"math"

	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/pmap"
	"carcs/internal/textproc"
)

// Bayes is a multinomial naive Bayes suggester trained on already-classified
// materials: each ontology entry is a class whose training text is the
// concatenation of the texts of materials tagged with it. Once enough
// materials are classified, it learns corpus-specific vocabulary (e.g. that
// "OpenMP" signals the compiler-pragmas entry) that the training-free
// suggesters cannot. Counts live in persistent maps, so Snap freezes the
// model in O(1) and reads work identically on live models and snapshots.
type Bayes struct {
	o *ontology.Ontology
	// termCounts[entry][term] = occurrences in the entry's training text.
	termCounts *pmap.Map[string, *pmap.Map[string, int]]
	totalTerms *pmap.Map[string, int]
	docCount   *pmap.Map[string, int]
	trained    int
	// vocab reference-counts term occurrences across all classes so that
	// Forget can shrink the vocabulary exactly when a term's last
	// occurrence leaves the model.
	vocab *pmap.Map[string, int]
}

// NewBayes returns an untrained model bound to the ontology.
func NewBayes(o *ontology.Ontology) *Bayes {
	return &Bayes{
		o:          o,
		termCounts: pmap.NewStrings[*pmap.Map[string, int]](),
		totalTerms: pmap.NewStrings[int](),
		docCount:   pmap.NewStrings[int](),
		vocab:      pmap.NewStrings[int](),
	}
}

// Name implements Suggester.
func (b *Bayes) Name() string { return "naive-bayes" }

// Snap returns an immutable snapshot of the model at its current version;
// later Observe/Forget calls on the live model do not affect it.
func (b *Bayes) Snap() *Bayes {
	cp := *b
	return &cp
}

// Train adds one classified material to the model. Classifications outside
// the model's ontology are ignored.
func (b *Bayes) Train(m *material.Material) {
	b.TrainTerms(m, textproc.Terms(m.SearchText()))
}

// TrainTerms is Train for a material whose search text is already analyzed,
// so the commit pipeline — which feeds one Bayes model per ontology plus the
// search indexes from the same text — tokenizes it once and shares the list.
func (b *Bayes) TrainTerms(m *material.Material, terms []string) {
	trained := false
	// Builders amortize the path copying across the material's whole term
	// list; see pmap.Builder.
	vb := b.vocab.Builder()
	for _, id := range m.ClassificationIDs() {
		if !b.o.Has(id) {
			continue
		}
		trained = true
		b.docCount = b.docCount.Set(id, b.docCount.GetOr(id, 0)+1)
		tc := b.termCounts.GetOr(id, nil)
		if tc == nil {
			tc = pmap.NewStrings[int]()
		}
		tb := tc.Builder()
		for _, t := range terms {
			tb.Set(t, tb.GetOr(t, 0)+1)
			vb.Set(t, vb.GetOr(t, 0)+1)
		}
		b.termCounts = b.termCounts.Set(id, tb.Map())
		b.totalTerms = b.totalTerms.Set(id, b.totalTerms.GetOr(id, 0)+len(terms))
	}
	b.vocab = vb.Map()
	if trained {
		b.trained++
	}
}

// TrainTermsBatch trains on a batch of materials in one builder session per
// count structure, equivalent to calling TrainTerms for each pair in order.
// termLists[i] must be the analyzed terms of ms[i]. Entries shared by many
// materials in the batch — the common case for a themed import — keep one
// open term-count builder across the whole batch, so their trie nodes are
// copied once instead of once per material.
func (b *Bayes) TrainTermsBatch(ms []*material.Material, termLists [][]string) {
	vb := b.vocab.Builder()
	db := b.docCount.Builder()
	ttb := b.totalTerms.Builder()
	tcb := b.termCounts.Builder()
	inner := make(map[string]*pmap.Builder[string, int])
	for i, m := range ms {
		terms := termLists[i]
		trained := false
		for _, id := range m.ClassificationIDs() {
			if !b.o.Has(id) {
				continue
			}
			trained = true
			db.Set(id, db.GetOr(id, 0)+1)
			tb := inner[id]
			if tb == nil {
				tc := tcb.GetOr(id, nil)
				if tc == nil {
					tc = pmap.NewStrings[int]()
				}
				tb = tc.Builder()
				inner[id] = tb
			}
			for _, t := range terms {
				tb.Set(t, tb.GetOr(t, 0)+1)
				vb.Set(t, vb.GetOr(t, 0)+1)
			}
			ttb.Set(id, ttb.GetOr(id, 0)+len(terms))
		}
		if trained {
			b.trained++
		}
	}
	for id, tb := range inner {
		tcb.Set(id, tb.Map())
	}
	b.termCounts = tcb.Map()
	b.docCount = db.Map()
	b.totalTerms = ttb.Map()
	b.vocab = vb.Map()
}

// Observe is Train under the name the incremental-maintenance interfaces
// use: the model absorbs one material in O(len(terms) × classifications)
// without a corpus rescan.
func (b *Bayes) Observe(m *material.Material) { b.Train(m) }

// ObserveTerms is Observe with pre-analyzed terms; see TrainTerms.
func (b *Bayes) ObserveTerms(m *material.Material, terms []string) { b.TrainTerms(m, terms) }

// Forget removes a previously trained material from the model — the exact
// inverse of Train, so add/remove/reclassify flows can keep a long-lived
// model current instead of retraining from scratch. Forgetting a material
// that was never trained (or whose text changed since) corrupts the counts;
// callers must pass the same material value they trained.
func (b *Bayes) Forget(m *material.Material) {
	terms := textproc.Terms(m.SearchText())
	forgot := false
	vb := b.vocab.Builder()
	for _, id := range m.ClassificationIDs() {
		if !b.o.Has(id) {
			continue
		}
		forgot = true
		b.docCount = b.docCount.Set(id, b.docCount.GetOr(id, 0)-1)
		tc := b.termCounts.GetOr(id, nil)
		var tb *pmap.Builder[string, int]
		if tc != nil {
			tb = tc.Builder()
		}
		for _, t := range terms {
			if tb != nil {
				if n := tb.GetOr(t, 0) - 1; n <= 0 {
					tb.Delete(t)
				} else {
					tb.Set(t, n)
				}
			}
			if n := vb.GetOr(t, 0) - 1; n <= 0 {
				vb.Delete(t)
			} else {
				vb.Set(t, n)
			}
		}
		if tb != nil {
			b.termCounts = b.termCounts.Set(id, tb.Map())
		}
		b.totalTerms = b.totalTerms.Set(id, b.totalTerms.GetOr(id, 0)-len(terms))
		if b.docCount.GetOr(id, 0) <= 0 {
			b.docCount = b.docCount.Delete(id)
			b.termCounts = b.termCounts.Delete(id)
			b.totalTerms = b.totalTerms.Delete(id)
		}
	}
	b.vocab = vb.Map()
	if forgot && b.trained > 0 {
		b.trained--
	}
}

// TrainAll trains on a whole collection.
func (b *Bayes) TrainAll(mats []*material.Material) {
	for _, m := range mats {
		b.Train(m)
	}
}

// Trained returns the number of training materials seen.
func (b *Bayes) Trained() int { return b.trained }

// Suggest implements Suggester: it scores every entry with training data by
// log P(entry) + Σ log P(term|entry) with Laplace smoothing, and returns the
// top k as suggestions. Scores are shifted so the best suggestion has score
// 1 and others fall off exponentially (comparable across queries).
func (b *Bayes) Suggest(text string, k int) []Suggestion {
	return b.SuggestTerms(textproc.Terms(text), k)
}

// SuggestTerms implements TermSuggester.
func (b *Bayes) SuggestTerms(terms []string, k int) []Suggestion {
	if b.trained == 0 || len(terms) == 0 {
		return nil
	}
	v := float64(b.vocab.Len() + 1)
	var out []Suggestion
	var best float64
	first := true
	b.termCounts.Range(func(id string, tc *pmap.Map[string, int]) bool {
		logp := math.Log(float64(b.docCount.GetOr(id, 0)) / float64(b.trained))
		denom := float64(b.totalTerms.GetOr(id, 0)) + v
		for _, t := range terms {
			logp += math.Log((float64(tc.GetOr(t, 0)) + 1) / denom)
		}
		if first || logp > best {
			best = logp
			first = false
		}
		out = append(out, Suggestion{NodeID: id, Path: b.o.Path(id), Score: logp})
		return true
	})
	// Normalize to (0, 1] with the best at 1.
	for i := range out {
		out[i].Score = math.Exp((out[i].Score - best) / float64(len(terms)))
	}
	return top(out, k)
}
