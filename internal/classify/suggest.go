// Package classify implements classification assistance for CAR-CS. The
// paper identifies manual classification as the bottleneck ("each item
// taking between 15-25 minutes to input and classify") and proposes two
// remedies as future work: suggesting classifications from material text,
// and recommending entries "commonly used together" once enough materials
// are classified. This package implements both, plus an evaluation harness
// (precision@k against the hand-curated corpus) so the remedies can be
// compared (experiments E8 and E11).
package classify

import (
	"sort"
	"sync"

	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/textproc"
)

// Suggestion is one proposed classification entry.
type Suggestion struct {
	// NodeID is the proposed ontology entry.
	NodeID string
	// Path is its display path.
	Path string
	// Score is suggester-specific; higher is better.
	Score float64
}

// Suggester proposes classification entries for a material description.
type Suggester interface {
	// Suggest returns up to k suggestions for the text, best first.
	Suggest(text string, k int) []Suggestion
	// Name identifies the suggester in reports.
	Name() string
}

// TermSuggester is a Suggester that can also score already-analyzed terms.
// Bulk pipelines (the ingest auto-classifier) tokenize each document once
// and fan the term list across every engine and ontology, instead of
// paying the analyzer per engine per ontology.
type TermSuggester interface {
	Suggester
	// SuggestTerms is Suggest for pre-analyzed (tokenized, stopped,
	// stemmed) terms.
	SuggestTerms(terms []string, k int) []Suggestion
}

// entryText renders an ontology entry as the text it is matched against:
// its label plus the labels of its ancestors, so "Data" deep inside
// Programming :: Performance Issues matches performance-related queries.
func entryText(o *ontology.Ontology, id string) string {
	return o.Path(id)
}

// ---------------------------------------------------------------------------
// Keyword matcher
// ---------------------------------------------------------------------------

// Keyword suggests entries by stemmed-term overlap between the text and the
// entry's path, normalized by entry length. It needs no training data.
type Keyword struct {
	o       *ontology.Ontology
	entries []string
	terms   map[string][]string // entry -> analyzed terms
}

// NewKeyword builds a keyword matcher over the classifiable entries of the
// ontology.
func NewKeyword(o *ontology.Ontology) *Keyword {
	k := &Keyword{o: o, terms: make(map[string][]string)}
	for _, id := range o.Classifiable() {
		k.entries = append(k.entries, id)
		k.terms[id] = textproc.Terms(entryText(o, id))
	}
	return k
}

// Name implements Suggester.
func (k *Keyword) Name() string { return "keyword" }

// Suggest implements Suggester.
func (k *Keyword) Suggest(text string, limit int) []Suggestion {
	return k.SuggestTerms(textproc.Terms(text), limit)
}

// SuggestTerms implements TermSuggester.
func (k *Keyword) SuggestTerms(qterms []string, limit int) []Suggestion {
	qset := make(map[string]bool)
	for _, t := range qterms {
		qset[t] = true
	}
	if len(qset) == 0 {
		return nil
	}
	var out []Suggestion
	for _, id := range k.entries {
		terms := k.terms[id]
		if len(terms) == 0 {
			continue
		}
		hits := 0
		seen := make(map[string]bool, len(terms))
		for _, t := range terms {
			if qset[t] && !seen[t] {
				seen[t] = true
				hits++
			}
		}
		if hits == 0 {
			continue
		}
		score := float64(hits) / float64(len(terms)+3)
		out = append(out, Suggestion{NodeID: id, Path: k.o.Path(id), Score: score})
	}
	return top(out, limit)
}

// ---------------------------------------------------------------------------
// TF-IDF suggester
// ---------------------------------------------------------------------------

// TFIDF suggests entries by cosine similarity between the text and TF-IDF
// vectors of entry paths, treating the ontology itself as the document
// corpus. Also training-free.
type TFIDF struct {
	o      *ontology.Ontology
	corpus *textproc.Corpus
}

// NewTFIDF builds the TF-IDF suggester over the classifiable entries.
func NewTFIDF(o *ontology.Ontology) *TFIDF {
	c := textproc.NewCorpus()
	for _, id := range o.Classifiable() {
		c.Add(id, entryText(o, id))
	}
	c.Finalize()
	return &TFIDF{o: o, corpus: c}
}

// Name implements Suggester.
func (t *TFIDF) Name() string { return "tfidf" }

// Suggest implements Suggester.
func (t *TFIDF) Suggest(text string, limit int) []Suggestion {
	return t.similar(t.corpus.Query(text), limit)
}

// SuggestTerms implements TermSuggester.
func (t *TFIDF) SuggestTerms(terms []string, limit int) []Suggestion {
	return t.similar(t.corpus.QueryTerms(terms), limit)
}

func (t *TFIDF) similar(q textproc.Vector, limit int) []Suggestion {
	var out []Suggestion
	for _, s := range t.corpus.Similar(q, limit) {
		out = append(out, Suggestion{NodeID: s.ID, Path: t.o.Path(s.ID), Score: s.Score})
	}
	return out
}

// ---------------------------------------------------------------------------
// shared instances
// ---------------------------------------------------------------------------

// The keyword and TF-IDF suggesters are training-free — their entire state is
// derived from the ontology at construction and never mutated afterwards
// (Suggest only reads) — and the curriculum ontologies are process-wide
// singletons. Rebuilding them for every System is therefore pure waste: the
// TF-IDF corpus alone tokenizes and vectorizes every classifiable entry path,
// which dominated System construction in ingest profiles. Shared* memoizes
// one instance per ontology for the life of the process.
var (
	sharedMu      sync.Mutex
	sharedKeyword = map[*ontology.Ontology]*Keyword{}
	sharedTFIDF   = map[*ontology.Ontology]*TFIDF{}
)

// SharedKeyword returns a process-wide cached NewKeyword(o). The result is
// safe for concurrent use; callers must not mutate it.
func SharedKeyword(o *ontology.Ontology) *Keyword {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	k, ok := sharedKeyword[o]
	if !ok {
		k = NewKeyword(o)
		sharedKeyword[o] = k
	}
	return k
}

// SharedTFIDF returns a process-wide cached NewTFIDF(o). The result is safe
// for concurrent use; callers must not mutate it.
func SharedTFIDF(o *ontology.Ontology) *TFIDF {
	sharedMu.Lock()
	defer sharedMu.Unlock()
	t, ok := sharedTFIDF[o]
	if !ok {
		t = NewTFIDF(o)
		sharedTFIDF[o] = t
	}
	return t
}

// ---------------------------------------------------------------------------
// shared helpers
// ---------------------------------------------------------------------------

func top(s []Suggestion, k int) []Suggestion {
	sort.SliceStable(s, func(i, j int) bool {
		if s[i].Score != s[j].Score {
			return s[i].Score > s[j].Score
		}
		return s[i].NodeID < s[j].NodeID
	})
	if k > 0 && len(s) > k {
		s = s[:k]
	}
	return s
}

// SuggestForMaterial runs a suggester over a material's search text.
func SuggestForMaterial(s Suggester, m *material.Material, k int) []Suggestion {
	return s.Suggest(m.SearchText(), k)
}
