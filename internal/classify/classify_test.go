package classify

import (
	"strings"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
)

func TestKeywordSuggest(t *testing.T) {
	k := NewKeyword(ontology.CS13())
	sugg := k.Suggest("an assignment about arrays and iterative loops over an array", 10)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	found := false
	for _, s := range sugg {
		if strings.HasSuffix(s.NodeID, "/sdf/fundamental-data-structures/arrays") {
			found = true
		}
		if s.Score <= 0 {
			t.Errorf("non-positive score: %+v", s)
		}
	}
	if !found {
		t.Errorf("Arrays not suggested: %+v", sugg)
	}
	for i := 1; i < len(sugg); i++ {
		if sugg[i-1].Score < sugg[i].Score {
			t.Error("suggestions not sorted")
		}
	}
	if k.Suggest("", 5) != nil {
		t.Error("empty text should yield nil")
	}
	if got := k.Suggest("arrays", 3); len(got) > 3 {
		t.Error("limit not applied")
	}
}

func TestTFIDFSuggest(t *testing.T) {
	s := NewTFIDF(ontology.PDC12())
	sugg := s.Suggest("students measure speedup and efficiency of an OpenMP loop", 8)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	var hit bool
	for _, sg := range sugg {
		if strings.Contains(sg.NodeID, "speedup-and-efficiency") || strings.Contains(sg.NodeID, "openmp") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("expected speedup/OpenMP entries, got %+v", sugg)
	}
}

func TestBayesTrainSuggest(t *testing.T) {
	b := NewBayes(ontology.PDC12())
	if b.Suggest("anything", 5) != nil {
		t.Error("untrained model should return nil")
	}
	b.TrainAll(corpus.Peachy().All())
	b.TrainAll(corpus.ITCS3145().All())
	if b.Trained() == 0 {
		t.Fatal("nothing trained")
	}
	sugg := b.Suggest("parallelize a loop with OpenMP pragmas and measure the speedup", 5)
	if len(sugg) == 0 {
		t.Fatal("no suggestions")
	}
	if sugg[0].Score != 1 {
		t.Errorf("best score should normalize to 1, got %v", sugg[0].Score)
	}
	var hit bool
	for _, sg := range sugg {
		if strings.Contains(sg.NodeID, "openmp") || strings.Contains(sg.NodeID, "speedup") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("expected OpenMP-ish suggestions, got %+v", sugg)
	}
	// Nifty materials have no PDC12 classifications, so training on them
	// adds nothing to a PDC12 model.
	before := b.Trained()
	b.TrainAll(corpus.Nifty().All())
	if b.Trained() != before {
		t.Errorf("Nifty materials trained a PDC12 model: %d -> %d", before, b.Trained())
	}
}

func TestCoOccurrence(t *testing.T) {
	mats := corpus.AllMaterials()
	co := NewCoOccurrence(mats)
	arrays := "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"
	loops := "acm-ieee-cs-curricula-2013/sdf/fundamental-programming-concepts/conditional-and-iterative-control-structures"
	rules := co.Rules(arrays, 2)
	if len(rules) == 0 {
		t.Fatal("no rules from Arrays")
	}
	var loopRule *Rule
	for i := range rules {
		r := &rules[i]
		if r.Then == loops {
			loopRule = r
		}
		if r.Confidence <= 0 || r.Confidence > 1 || r.Support <= 0 || r.Support > 1 {
			t.Errorf("rule out of range: %+v", r)
		}
	}
	if loopRule == nil {
		t.Fatal("Arrays -> loops rule missing (the Fig. 3 cluster guarantees it)")
	}
	if loopRule.Count < 10 {
		t.Errorf("Arrays+loops joint count = %d, want >= 10 (cluster)", loopRule.Count)
	}
	if co.Rules("ghost", 1) != nil {
		t.Error("rules for unknown entry should be nil")
	}

	recs := co.Recommend([]string{arrays}, 2, 5)
	if len(recs) == 0 || len(recs) > 5 {
		t.Fatalf("Recommend = %+v", recs)
	}
	for _, r := range recs {
		if r.Then == arrays {
			t.Error("recommended an already-selected entry")
		}
	}
	// The top recommendation from {arrays} should be loops.
	if recs[0].Then != loops {
		t.Errorf("top recommendation = %s, want loops", recs[0].Then)
	}
}

func TestSuggesterQuality(t *testing.T) {
	cs13 := ontology.CS13()
	inCS13 := cs13.Has
	mats := corpus.Nifty().All()
	k := 10

	kw := Evaluate(NewKeyword(cs13), mats, inCS13, k)
	tf := Evaluate(NewTFIDF(cs13), mats, inCS13, k)
	if kw.N == 0 || tf.N == 0 {
		t.Fatal("evaluation covered no materials")
	}
	// The suggesters must beat a floor: at least a third of materials get
	// at least one correct suggestion in the top 10.
	if kw.HitRate < 0.33 {
		t.Errorf("keyword hit rate too low: %s", kw)
	}
	if tf.HitRate < 0.33 {
		t.Errorf("tfidf hit rate too low: %s", tf)
	}
	t.Logf("E11: %s", kw)
	t.Logf("E11: %s", tf)

	// Leave-one-out naive Bayes on the small Peachy set (11 materials).
	pdc := ontology.PDC12()
	loo := EvaluateLeaveOneOut(func() *Bayes { return NewBayes(pdc) }, corpus.Peachy().All(), pdc.Has, k)
	// 10, not 11: the middleware assignment has no PDC12 labels because
	// PDC12 has no middleware entries (the Sec. IV-A observation).
	if loo.N != 10 {
		t.Errorf("LOO n = %d, want 10", loo.N)
	}
	if loo.HitRate < 0.5 {
		t.Errorf("bayes LOO hit rate too low: %s", loo)
	}
	t.Logf("E11: %s", loo)
}

func TestEvaluateSkipsUnlabeled(t *testing.T) {
	cs13 := ontology.CS13()
	m := &material.Material{ID: "none", Title: "n", Kind: material.Assignment, Level: material.CS1}
	q := Evaluate(NewKeyword(cs13), []*material.Material{m}, cs13.Has, 5)
	if q.N != 0 {
		t.Errorf("unlabeled material counted: %+v", q)
	}
}

func TestEnsembleSuggest(t *testing.T) {
	cs13 := ontology.CS13()
	ens := NewEnsemble(NewKeyword(cs13), NewTFIDF(cs13))
	if got := ens.Name(); got != "ensemble(keyword+tfidf)" {
		t.Errorf("Name = %q", got)
	}
	sugg := ens.Suggest("an assignment about arrays and iterative loops", 10)
	if len(sugg) == 0 || len(sugg) > 10 {
		t.Fatalf("ensemble suggestions = %d", len(sugg))
	}
	for i := 1; i < len(sugg); i++ {
		if sugg[i-1].Score < sugg[i].Score {
			t.Error("ensemble not sorted")
		}
	}
	// Fusion should surface entries both members rank highly; Arrays is a
	// top candidate for both.
	found := false
	for _, s := range sugg {
		if strings.HasSuffix(s.NodeID, "/arrays") {
			found = true
		}
	}
	if !found {
		t.Errorf("ensemble missed Arrays: %+v", sugg[:3])
	}
	// Quality: the ensemble's hit rate is at least as good as the weaker
	// member's on the Nifty corpus.
	mats := corpus.Nifty().All()
	kw := Evaluate(NewKeyword(cs13), mats, cs13.Has, 10)
	eq := Evaluate(ens, mats, cs13.Has, 10)
	if eq.HitRate+0.05 < kw.HitRate {
		t.Errorf("ensemble hit rate %.3f well below keyword %.3f", eq.HitRate, kw.HitRate)
	}
	t.Logf("E11: %s", eq)
}
