package classify

import (
	"reflect"
	"testing"

	"carcs/internal/corpus"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/pmap"
)

// The incremental Observe/Forget paths must leave a long-lived model in the
// exact state a from-scratch rebuild over the surviving materials would
// produce — that equivalence is what lets the core system skip per-request
// retraining. Persistent maps are compared by content (two maps with the
// same entries can differ in internal tree shape depending on history).

func dumpCounts(m *pmap.Map[string, int]) map[string]int {
	out := make(map[string]int)
	m.Range(func(k string, v int) bool {
		out[k] = v
		return true
	})
	return out
}

func dumpNested(m *pmap.Map[string, *pmap.Map[string, int]]) map[string]map[string]int {
	out := make(map[string]map[string]int)
	m.Range(func(k string, v *pmap.Map[string, int]) bool {
		out[k] = dumpCounts(v)
		return true
	})
	return out
}

func bayesStateEqual(t *testing.T, got, want *Bayes) {
	t.Helper()
	if got.trained != want.trained {
		t.Errorf("trained: got %d, want %d", got.trained, want.trained)
	}
	if g, w := dumpCounts(got.docCount), dumpCounts(want.docCount); !reflect.DeepEqual(g, w) {
		t.Errorf("docCount diverged:\n got %v\nwant %v", g, w)
	}
	if g, w := dumpCounts(got.totalTerms), dumpCounts(want.totalTerms); !reflect.DeepEqual(g, w) {
		t.Errorf("totalTerms diverged:\n got %v\nwant %v", g, w)
	}
	if g, w := dumpCounts(got.vocab), dumpCounts(want.vocab); !reflect.DeepEqual(g, w) {
		t.Errorf("vocab diverged: got %d terms, want %d terms", len(g), len(w))
	}
	if !reflect.DeepEqual(dumpNested(got.termCounts), dumpNested(want.termCounts)) {
		t.Error("termCounts diverged")
	}
}

func TestBayesObserveForgetMatchesRebuild(t *testing.T) {
	o := ontology.CS13()
	mats := corpus.Nifty().All()
	if len(mats) < 6 {
		t.Fatal("corpus too small for the scenario")
	}

	// Incremental: train everything, then forget every third material.
	inc := NewBayes(o)
	for _, m := range mats {
		inc.Observe(m)
	}
	var kept []*material.Material
	for i, m := range mats {
		if i%3 == 0 {
			inc.Forget(m)
		} else {
			kept = append(kept, m)
		}
	}

	// Reference: a fresh model trained only on the survivors.
	ref := NewBayes(o)
	ref.TrainAll(kept)

	bayesStateEqual(t, inc, ref)

	// And the suggestions they produce must match exactly.
	q := "parallel sorting of arrays with threads"
	if !reflect.DeepEqual(inc.Suggest(q, 8), ref.Suggest(q, 8)) {
		t.Error("suggestions diverged after Forget")
	}
}

func TestBayesForgetAllEmptiesModel(t *testing.T) {
	o := ontology.PDC12()
	mats := corpus.Peachy().All()
	b := NewBayes(o)
	for _, m := range mats {
		b.Observe(m)
	}
	for _, m := range mats {
		b.Forget(m)
	}
	bayesStateEqual(t, b, NewBayes(o))
	if got := b.Suggest("speedup of an openmp loop", 5); got != nil {
		t.Errorf("empty model should suggest nothing, got %v", got)
	}
}

func TestCoOccurrenceObserveForgetMatchesRebuild(t *testing.T) {
	mats := corpus.AllMaterials()
	if len(mats) < 6 {
		t.Fatal("corpus too small for the scenario")
	}

	inc := NewCoOccurrence(mats)
	var kept []*material.Material
	for i, m := range mats {
		if i%4 == 1 {
			inc.Forget(m)
		} else {
			kept = append(kept, m)
		}
	}
	ref := NewCoOccurrence(kept)

	if inc.n != ref.n {
		t.Errorf("n: got %d, want %d", inc.n, ref.n)
	}
	if g, w := dumpCounts(inc.count), dumpCounts(ref.count); !reflect.DeepEqual(g, w) {
		t.Errorf("count diverged:\n got %v\nwant %v", g, w)
	}
	if !reflect.DeepEqual(dumpNested(inc.pair), dumpNested(ref.pair)) {
		t.Error("pair counts diverged")
	}

	sel := []string{"acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays"}
	if !reflect.DeepEqual(inc.Recommend(sel, 2, 10), ref.Recommend(sel, 2, 10)) {
		t.Error("recommendations diverged after Forget")
	}
}

func TestCoOccurrenceForgetAllEmptiesModel(t *testing.T) {
	mats := corpus.Nifty().All()
	c := NewCoOccurrence(mats)
	for _, m := range mats {
		c.Forget(m)
	}
	if c.n != 0 || c.count.Len() != 0 || c.pair.Len() != 0 {
		t.Errorf("model not empty after forgetting everything: n=%d count=%d pair=%d",
			c.n, c.count.Len(), c.pair.Len())
	}
}
