package corpus

import (
	"fmt"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// buildPeachy seeds the 11 Peachy Parallel Assignments: peer-reviewed,
// classroom-tested assignments with parallel and distributed computing
// content, presented at EduPar and EduHPC. Matching the paper's analysis
// (Fig. 2b/2e and Sec. IV-C): the dominant CS13 area is Parallel and
// Distributed Computing, followed by Systems Fundamentals and Architecture;
// SDF coverage is low and concentrates on Fundamental Programming Concepts;
// none of them touch object-oriented programming. Four of them — the four
// the paper names — also carry "Arrays" and "Conditional and iterative
// control structures", forming the Fig. 3 cluster.
func buildPeachy() *material.Collection {
	c := material.NewCollection("peachy", "Peachy Parallel Assignments")
	add := func(year int, title, lang string, level material.Level, desc string, cls []material.Classification, extra ...string) {
		c.MustAdd(&material.Material{
			ID:              ontology.Slug(title),
			Title:           title,
			Authors:         []string{"Peachy contributor"},
			URL:             fmt.Sprintf("https://tcpp.cs.gsu.edu/curriculum/?q=peachy/%s", ontology.Slug(title)),
			Description:     desc,
			Kind:            material.Assignment,
			Level:           level,
			Language:        lang,
			Year:            year,
			Tags:            extra,
			Classifications: cls,
		})
	}

	// ---- The four Fig. 3 cluster members (named in the paper) ---------
	add(2018, "Computing a Movie of Zooming Into a Fractal", "C", material.CS2,
		"Render frames of a Mandelbrot zoom in parallel: each frame's pixel array is computed with loops that are trivially distributed over threads, then assembled into a movie. Load imbalance across frames motivates dynamic scheduling.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("PD", "Parallel Decomposition", "Data-parallel decomposition"),
			cs("PD", "Parallelism Fundamentals", "Multiple simultaneous computations"),
			cs("PD", "Parallel Performance", "Load balancing strategies"),
			cs("SF", "Parallelism", "Sequential versus parallel processing"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Compiler directives and pragmas (e.g., OpenMP)"),
			pdc("PR", "Performance Issues", "Computation", "Load balancing"),
			pdc("PR", "Performance Issues", "Data", "Speedup and efficiency"),
			cs("SF", "Evaluation", "Performance figures of merit"),
		), "fractal", "media")
	add(2018, "Fire Simulator and Fractal Growth", "C", material.CS2,
		"Simulate fire spreading through a forest grid and measure the fractal dimension of the burned region; cells are arrays updated in nested loops, parallelized over rows with shared-memory threads.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("PD", "Parallel Decomposition", "Data-parallel decomposition"),
			cs("PD", "Communication and Coordination", "Shared memory communication"),
			cs("SF", "Parallelism", "Parallel programming versus concurrent programming"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "By the target machine model", "Shared memory programming"),
			pdc("AL", "Algorithmic Problems", "Specialized computations", "Monte Carlo methods"),
			pdc("PR", "Performance Issues", "Data", "Speedup and efficiency"),
		), "simulation", "fractal")
	add(2018, "Using a Monte Carlo Pattern to Simulate a Forest Fire", "C", material.CS1,
		"Estimate the burn probability of a forest with repeated randomized trials; each trial loops over an array of trees, and trials are embarrassingly parallel across threads or ranks.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Naturally (embarrassingly) parallel algorithms"),
			cs("PD", "Parallelism Fundamentals", "Multiple simultaneous computations"),
			cs("SF", "Parallelism", "Sequential versus parallel processing"),
			pdc("AL", "Algorithmic Problems", "Specialized computations", "Monte Carlo methods"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "By the target machine model", "Data parallel programming"),
			pdc("PR", "Performance Issues", "Data", "Speedup and efficiency"),
		), "simulation")
	add(2018, "Storm of High Energy Particles", "C", material.CS2,
		"Track a storm of particles bombarding a surface: impacts accumulate into an energy array inside a time loop, and the computation is distributed over MPI ranks with a final reduction.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("PD", "Communication and Coordination", "Message passing communication"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel reduction"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Message passing multiprocessors"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
			pdc("AL", "Algorithmic Paradigms", "Reduction (map-reduce as a pattern, not the system)"),
			pdc("PR", "Performance Issues", "Data", "Performance impact of data movement"),
			cs("AR", "Assembly Level Machine Organization", "Shared memory multiprocessors and multicore organization"),
		), "simulation", "physics")

	// ---- Systems-oriented assignments (no Fig. 3 matches) -------------
	add(2018, "Finding the Data Race", "C", material.Intermediate,
		"Students receive multithreaded programs that intermittently fail and must find and fix the data races using atomic operations and locks, then argue why the fix is sufficient.",
		tags(
			cs("PD", "Parallelism Fundamentals", "Programming errors not found in sequential programming: data races and lack of liveness"),
			cs("PD", "Communication and Coordination", "Atomicity: specifying and testing atomic behavior"),
			cs("PD", "Communication and Coordination", "Mutual exclusion locks and their use"),
			cs("OS", "Concurrency", "Race conditions in concurrent programs"),
			cs("SF", "Parallelism", "Common parallelism pitfalls: deadlock and data races at the systems level"),
			pdc("PR", "Semantics and Correctness Issues", "Concurrency defects: data races"),
			pdc("PR", "Semantics and Correctness Issues", "Synchronization: critical regions"),
			pdc("PR", "Semantics and Correctness Issues", "Tasks and threads"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Shared multiprocessor memory systems and memory consistency"),
		), "concurrency")
	add(2019, "Publish-Subscribe Middleware Chat", "Java", material.Intermediate,
		"Build a topic-based publish-subscribe chat system over sockets: a small middleware layer routes messages between distributed clients and survives subscriber churn.",
		tags(
			cs("PD", "Distributed Systems", "Remote procedure calls and distributed middleware"),
			cs("PD", "Distributed Systems", "Distributed message sending: data conversion and addressing"),
			cs("NC", "Networked Applications", "Socket programming interfaces"),
			cs("NC", "Networked Applications", "Distributed application paradigms: client-server and peer-to-peer"),
			cs("SF", "Cross-Layer Communications", "Requests and responses across layers"),
		), "middleware", "distributed")
	add(2019, "MPI Ring Around the World", "C", material.Intermediate,
		"Pass a token around a ring of MPI ranks, then generalize to broadcast and all-reduce, measuring latency and bandwidth at each scale.",
		tags(
			cs("PD", "Communication and Coordination", "Message passing communication"),
			cs("PD", "Parallel Performance", "Evaluation of communication overhead"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Message passing multiprocessors"),
			cs("SF", "Evaluation", "Performance figures of merit"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
			pdc("AL", "Algorithmic Problems", "Communication", "Broadcast"),
			pdc("AR", "Classes", "Shared versus distributed memory systems", "Message passing latency and bandwidth"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Interconnection networks: hypercube, shuffle, mesh, crossbar"),
		), "mpi", "distributed")
	add(2019, "GPU Image Filters", "CUDA", material.Intermediate,
		"Port per-pixel image filters to a GPU, mapping pixels to threads and comparing kernel throughput with the multicore CPU version.",
		tags(
			cs("PD", "Parallel Architecture", "GPU and co-processing architectures"),
			cs("PD", "Parallel Decomposition", "Data-parallel decomposition"),
			cs("AR", "Performance Enhancements", "Vector processors and GPUs"),
			cs("SF", "Evaluation", "Workloads and representative benchmarks"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "GPU programming (e.g., CUDA, OpenCL)"),
			pdc("AR", "Classes", "Data versus control parallelism", "Streams (e.g., GPU)"),
			pdc("PR", "Performance Issues", "Data", "Data locality and its impact on performance"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Example SIMD and MIMD instruction sets and architectures"),
		), "gpu", "media")
	add(2019, "Parallel Sorting Derby", "C++", material.Intermediate,
		"Race implementations of parallel merge sort and sample sort across core counts, plotting speedup curves and identifying the sequential bottleneck.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel sorting algorithms"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Speedup, efficiency, and scalability of parallel programs"),
			cs("SF", "Evaluation", "Amdahl's law applied to system speedup"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Shared multiprocessor memory systems and memory consistency"),
			pdc("AL", "Algorithmic Problems", "Sorting and selection", "Parallel merge sort"),
			pdc("PR", "Performance Issues", "Data", "Amdahl's law"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Compiler directives and pragmas (e.g., OpenMP)"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Multiprocessor cache coherence protocols"),
		), "sorting")
	add(2019, "Heat Diffusion on a Metal Plate", "C", material.Intermediate,
		"Solve the heat equation on a plate with an iterative stencil, first with OpenMP over rows, then with MPI halo exchanges across a decomposed grid.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel matrix computations"),
			cs("PD", "Communication and Coordination", "Message passing communication"),
			cs("PD", "Parallel Performance", "Data management: impact of caching and data movement costs"),
			cs("SF", "Parallelism", "Request parallelism versus task parallelism"),
			cs("SDF", "Fundamental Programming Concepts", "Variables and primitive data types"),
			pdc("AL", "Algorithmic Problems", "Specialized computations", "Stencil computations"),
			pdc("PR", "Performance Issues", "Data", "Data distribution"),
			pdc("AR", "Classes", "Taxonomy", "Shared versus distributed memory"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Interconnection networks: hypercube, shuffle, mesh, crossbar"),
		), "simulation", "hpc")
	add(2019, "Counting Crowds with Map-Reduce", "C", material.Intermediate,
		"Count event attendance from camera logs with the map-reduce pattern implemented over MPI, contrasting it with a hand-rolled reduction tree.",
		tags(
			cs("PD", "Cloud Computing", "MapReduce and large-scale data-parallel frameworks"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel reduction"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Message passing multiprocessors"),
			cs("SF", "Parallelism", "Sequential versus parallel processing"),
			pdc("AL", "Algorithmic Paradigms", "Reduction (map-reduce as a pattern, not the system)"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
			pdc("AL", "Algorithmic Problems", "Communication", "Scatter and gather"),
		), "mapreduce", "dataset")

	return c
}
