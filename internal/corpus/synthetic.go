package corpus

import (
	"fmt"
	"math/rand"
	"strings"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// SyntheticOptions controls the deterministic synthetic corpus generator
// used by the scaling benchmarks (experiment E12): the paper positions
// CAR-CS as "a scalable, central place of interaction", so the reproduction
// measures store, search, coverage, and similarity performance well beyond
// the 98 seeded materials.
type SyntheticOptions struct {
	// N is the number of materials to generate.
	N int
	// Seed makes generation reproducible.
	Seed int64
	// MeanClassifications is the average number of classifications per
	// material (minimum 1); defaults to 5 when zero.
	MeanClassifications int
	// PDCFraction in [0,1] is the fraction of materials that also draw
	// classifications from PDC12; defaults to 0.3 when zero.
	PDCFraction float64
	// IDPrefix prefixes generated material IDs; defaults to "syn-". The
	// multi-tenant scale harness gives each workspace its own prefix so
	// corpora stay distinguishable in mixed logs.
	IDPrefix string
}

var synthThemes = []struct {
	verb, object, twist string
}{
	{"Simulate", "a traffic network", "with per-intersection queues"},
	{"Render", "a particle fountain", "frame by frame"},
	{"Index", "a corpus of song lyrics", "for fast phrase search"},
	{"Balance", "a fleet of delivery drones", "under battery constraints"},
	{"Compress", "telescope imagery", "without losing faint stars"},
	{"Schedule", "final exams", "to avoid student conflicts"},
	{"Cluster", "news articles", "by topic drift over time"},
	{"Route", "packets in a toy network", "with shifting link costs"},
	{"Predict", "bike-share demand", "from weather traces"},
	{"Sort", "a warehouse of parcels", "with limited staging space"},
}

var synthLanguages = []string{"C", "C++", "Java", "Python", "Go", "JavaScript"}
var synthLevels = []material.Level{material.CS0, material.CS1, material.CS2, material.Intermediate, material.Advanced}
var synthKinds = []material.Kind{material.Assignment, material.Slides, material.Exam, material.Video, material.Chapter}

// Synthetic generates a deterministic collection of plausible materials
// classified against the real CS13 (and optionally PDC12) ontologies.
func Synthetic(opt SyntheticOptions) *material.Collection {
	c := material.NewCollection("synthetic", "Synthetic Materials")
	SyntheticEach(opt, func(m *material.Material) error {
		c.MustAdd(m)
		return nil
	})
	return c
}

// SyntheticEach streams the deterministic synthetic corpus one material at
// a time — the scale harness drives a million materials through fn without
// ever materializing the slice. The draw order (and so the generated
// corpus) is byte-identical to Synthetic's for the same options. fn
// returning an error stops generation; the error is returned.
func SyntheticEach(opt SyntheticOptions, fn func(m *material.Material) error) error {
	if opt.MeanClassifications <= 0 {
		opt.MeanClassifications = 5
	}
	if opt.PDCFraction == 0 {
		opt.PDCFraction = 0.3
	}
	if opt.IDPrefix == "" {
		opt.IDPrefix = "syn-"
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	cs13, pdc12 := ontology.CS13(), ontology.PDC12()
	csEntries := cs13.Classifiable()
	pdcEntries := pdc12.Classifiable()

	for i := 0; i < opt.N; i++ {
		th := synthThemes[rng.Intn(len(synthThemes))]
		title := fmt.Sprintf("%s %s #%d", th.verb, strings.TrimPrefix(th.object, "a "), i)
		usePDC := rng.Float64() < opt.PDCFraction
		nCls := 1 + rng.Intn(2*opt.MeanClassifications-1)
		seen := make(map[string]bool)
		var cls []material.Classification
		for len(cls) < nCls {
			var id string
			if usePDC && rng.Intn(2) == 0 {
				id = pdcEntries[rng.Intn(len(pdcEntries))]
			} else {
				id = csEntries[rng.Intn(len(csEntries))]
			}
			if seen[id] {
				continue
			}
			seen[id] = true
			cls = append(cls, material.Classification{NodeID: id})
		}
		m := &material.Material{
			ID:              fmt.Sprintf("%s%06d", opt.IDPrefix, i),
			Title:           title,
			Authors:         []string{fmt.Sprintf("Author %d", rng.Intn(40))},
			URL:             fmt.Sprintf("https://example.edu/materials/%d", i),
			Description:     fmt.Sprintf("%s %s %s; students measure the result and report what changed.", th.verb, th.object, th.twist),
			Kind:            synthKinds[rng.Intn(len(synthKinds))],
			Level:           synthLevels[rng.Intn(len(synthLevels))],
			Language:        synthLanguages[rng.Intn(len(synthLanguages))],
			Year:            2003 + rng.Intn(16),
			Classifications: cls,
		}
		if err := fn(m); err != nil {
			return err
		}
	}
	return nil
}
