package corpus

import (
	"strings"
	"testing"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

func TestCollectionSizes(t *testing.T) {
	// Sec. III-B: "about 65 Nifty assignments", "all 11 Peachy
	// Assignments", and ITCS 3145's "12 slide decks and 9 assignments".
	if n := Nifty().Len(); n < 60 || n > 70 {
		t.Errorf("Nifty size = %d, want about 65", n)
	}
	if n := Peachy().Len(); n != 11 {
		t.Errorf("Peachy size = %d, want 11", n)
	}
	itcs := ITCS3145()
	if n := itcs.Len(); n != 21 {
		t.Errorf("ITCS 3145 size = %d, want 21", n)
	}
	slides := itcs.Filter(func(m *material.Material) bool { return m.Kind == material.Slides })
	assigns := itcs.Filter(func(m *material.Material) bool { return m.Kind == material.Assignment })
	if len(slides) != 12 || len(assigns) != 9 {
		t.Errorf("ITCS 3145 = %d slides + %d assignments, want 12 + 9", len(slides), len(assigns))
	}
}

func TestAllMaterialsValid(t *testing.T) {
	cs13, pdc12 := ontology.CS13(), ontology.PDC12()
	for _, c := range Collections() {
		if errs := c.Validate(cs13, pdc12); len(errs) != 0 {
			t.Errorf("%s: %d invalid materials, first: %v", c.Name, len(errs), errs[0])
		}
		for _, m := range c.All() {
			if len(m.Classifications) == 0 {
				t.Errorf("%s/%s has no classifications", c.Name, m.ID)
			}
			if m.Description == "" || m.URL == "" || m.Year == 0 {
				t.Errorf("%s/%s missing metadata", c.Name, m.ID)
			}
			if m.Collection != c.Name {
				t.Errorf("%s/%s records collection %q", c.Name, m.ID, m.Collection)
			}
		}
	}
}

func TestUniqueIDsAcrossCollections(t *testing.T) {
	seen := make(map[string]string)
	for _, m := range AllMaterials() {
		if prev, dup := seen[m.ID]; dup {
			t.Errorf("material id %q in both %s and %s", m.ID, prev, m.Collection)
		}
		seen[m.ID] = m.Collection
	}
}

// TestNiftyHasNoPDC reproduces the Sec. IV-C observation that "Nifty
// Assignments do not cover any PDC topics": no PDC12 classifications at all,
// and no CS13 classifications inside the PD area.
func TestNiftyHasNoPDC(t *testing.T) {
	cs13, pdc12 := ontology.CS13(), ontology.PDC12()
	pdArea := cs13.AreaByCode("PD")
	for _, m := range Nifty().All() {
		for _, cl := range m.Classifications {
			if pdc12.Has(cl.NodeID) {
				t.Errorf("nifty/%s has PDC12 classification %q", m.ID, cl.NodeID)
			}
			if cs13.Within(cl.NodeID, pdArea) {
				t.Errorf("nifty/%s classified in CS13 PD: %q", m.ID, cl.NodeID)
			}
		}
	}
}

// TestPeachyAvoidsOOP reproduces "Nifty Assignments seem to commonly touch
// upon Object Oriented Programming which does not appear in Peachy
// Assignments".
func TestPeachyAvoidsOOP(t *testing.T) {
	cs13 := ontology.CS13()
	oop := cs13.RootID() + "/pl/object-oriented-programming"
	if !cs13.Has(oop) {
		t.Fatal("OOP unit missing from CS13")
	}
	for _, m := range Peachy().All() {
		for _, cl := range m.Classifications {
			if cs13.Within(cl.NodeID, oop) {
				t.Errorf("peachy/%s touches OOP: %q", m.ID, cl.NodeID)
			}
		}
	}
	oopCount := 0
	for _, m := range Nifty().All() {
		for _, cl := range m.Classifications {
			if cs13.Within(cl.NodeID, oop) {
				oopCount++
			}
		}
	}
	if oopCount < 10 {
		t.Errorf("Nifty OOP classifications = %d, want common (>= 10)", oopCount)
	}
}

// TestClusterSeeds verifies the exact Fig. 3 cluster construction: the four
// named Peachy and six named Nifty assignments all carry both "Arrays" and
// "Conditional and iterative control structures", and no other Nifty
// assignment carries both.
func TestClusterSeeds(t *testing.T) {
	arrays := cs("SDF", "Fundamental Data Structures", "Arrays").NodeID
	loops := cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures").NodeID

	wantNifty := map[string]bool{
		"hurricane-tracker": true, "2048-in-python": true, "campus-shuttle": true,
		"nbody-simulation": true, "image-editor": true, "uno": true,
	}
	for _, m := range Nifty().All() {
		both := m.HasClassification(arrays) && m.HasClassification(loops)
		if both != wantNifty[m.ID] {
			t.Errorf("nifty/%s: arrays+loops = %v, want %v", m.ID, both, wantNifty[m.ID])
		}
	}
	wantPeachy := map[string]bool{
		"computing-a-movie-of-zooming-into-a-fractal":           true,
		"fire-simulator-and-fractal-growth":                     true,
		"using-a-monte-carlo-pattern-to-simulate-a-forest-fire": true,
		"storm-of-high-energy-particles":                        true,
	}
	for _, m := range Peachy().All() {
		both := m.HasClassification(arrays) && m.HasClassification(loops)
		if both != wantPeachy[m.ID] {
			t.Errorf("peachy/%s: arrays+loops = %v, want %v", m.ID, both, wantPeachy[m.ID])
		}
	}
}

// TestITCS3145AvoidedTopics reproduces Sec. IV-B: "topics related to
// distributed systems, complexity theory, complex algorithms, and tooling
// are not covered by the class", and the untouched CS13 areas.
func TestITCS3145AvoidedTopics(t *testing.T) {
	cs13, pdc12 := ontology.CS13(), ontology.PDC12()
	banned := []string{
		cs13.RootID() + "/pd/distributed-systems",
		cs13.RootID() + "/al/basic-automata-computability-and-complexity",
		cs13.RootID() + "/al/advanced-computational-complexity",
		pdc12.RootID() + "/pr/performance-tools",
	}
	for _, root := range banned {
		if !cs13.Has(root) && !pdc12.Has(root) {
			t.Fatalf("banned subtree %q missing from ontologies", root)
		}
	}
	bannedAreas := []string{"HCI", "SP", "IAS", "PBD", "GV", "IS"}
	for _, m := range ITCS3145().All() {
		for _, cl := range m.Classifications {
			for _, root := range banned {
				if cs13.Within(cl.NodeID, root) || pdc12.Within(cl.NodeID, root) {
					t.Errorf("itcs3145/%s classified in avoided subtree %q", m.ID, cl.NodeID)
				}
			}
			if strings.HasPrefix(cl.NodeID, cs13.RootID()) {
				area := cs13.Code(cs13.Area(cl.NodeID))
				for _, bad := range bannedAreas {
					if area == bad {
						t.Errorf("itcs3145/%s classified in untouched area %s: %q", m.ID, bad, cl.NodeID)
					}
				}
			}
		}
	}
}

// TestITCS3145UnitTests reproduces "assignments are scaffolded using unit
// tests which appears in that category [SDF]".
func TestITCS3145UnitTests(t *testing.T) {
	unitTests := cs("SDF", "Development Methods", "Unit testing and test-case design").NodeID
	n := 0
	for _, m := range ITCS3145().All() {
		if m.HasClassification(unitTests) {
			if m.Kind != material.Assignment {
				t.Errorf("%s: unit-test classification on %v", m.ID, m.Kind)
			}
			n++
		}
	}
	if n == 0 {
		t.Error("no ITCS 3145 assignment carries the unit-testing classification")
	}
}

func TestSharedClassifications(t *testing.T) {
	nifty, peachy := Nifty(), Peachy()
	uno := nifty.Get("uno")
	fractal := peachy.Get("computing-a-movie-of-zooming-into-a-fractal")
	if uno == nil || fractal == nil {
		t.Fatal("seed lookup failed")
	}
	shared := uno.SharedClassifications(fractal)
	if len(shared) < 2 {
		t.Errorf("uno–fractal shared = %v, want >= 2 (Fig. 3 edge)", shared)
	}
	race := peachy.Get("finding-the-data-race")
	if race == nil {
		t.Fatal("data-race assignment missing")
	}
	for _, m := range nifty.All() {
		if len(m.SharedClassifications(race)) >= 2 {
			t.Errorf("systems-oriented peachy matched nifty/%s", m.ID)
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("nifty") == nil || ByName("peachy") == nil || ByName("itcs3145") == nil {
		t.Error("ByName failed for seeded collections")
	}
	if ByName("ghost") != nil {
		t.Error("ByName(ghost) should be nil")
	}
	if len(AllMaterials()) != Nifty().Len()+Peachy().Len()+ITCS3145().Len() {
		t.Error("AllMaterials size mismatch")
	}
}

func TestResolverPanicsOnTypo(t *testing.T) {
	mustPanic(t, func() { cs("SDF", "No Such Unit", "Nope") })
	mustPanic(t, func() { cs("SDF") })
	mustPanic(t, func() { cs("SDF", "Fundamental Data Structures") }) // unit, not classifiable
	mustPanic(t, func() { pdc("ZZ", "Nope") })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
