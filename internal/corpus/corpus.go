// Package corpus seeds the CAR-CS reproduction with the three collections
// the paper enters into the prototype (Sec. III-B): about 65 Nifty
// assignments (2003–2018), the 11 Peachy Parallel assignments, and the full
// materials of ITCS 3145 (12 slide decks and 9 assignments).
//
// The original classifications were curated by the paper's authors inside
// their database and are not published; this package recreates an equivalent
// hand-curated corpus whose aggregate shape reproduces every claim in
// Sec. IV (see DESIGN.md's substitution table and EXPERIMENTS.md for the
// checks). Classification references are written as human-readable paths and
// resolved against the real ontologies at build time, so a typo fails tests
// rather than silently dropping coverage.
package corpus

import (
	"fmt"
	"sync"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// cs resolves a CS13 classification from the area code and the labels of
// the nodes down the tree, panicking on any unresolvable or non-classifiable
// path. Example: cs("SDF", "Fundamental Data Structures", "Arrays").
func cs(parts ...string) material.Classification {
	return resolve(ontology.CS13(), parts...)
}

// pdc resolves a PDC12 classification in the same way, e.g.
// pdc("PR", "Performance Issues", "Data", "Amdahl's law").
func pdc(parts ...string) material.Classification {
	return resolve(ontology.PDC12(), parts...)
}

func resolve(o *ontology.Ontology, parts ...string) material.Classification {
	if len(parts) < 2 {
		panic(fmt.Sprintf("corpus: classification path too short: %v", parts))
	}
	id := o.RootID() + "/" + ontology.Slug(parts[0])
	for _, p := range parts[1:] {
		id += "/" + ontology.Slug(p)
	}
	n := o.Node(id)
	if n == nil {
		panic(fmt.Sprintf("corpus: %s: no entry %q (from %v)", o.Name(), id, parts))
	}
	if !n.Kind.Classifiable() {
		panic(fmt.Sprintf("corpus: %s: entry %q is a %v, not classifiable", o.Name(), id, n.Kind))
	}
	return material.Classification{NodeID: id}
}

// tags builds a classification list; a tiny alias to keep the data tables
// readable.
func tags(cls ...material.Classification) []material.Classification { return cls }

// at annotates a classification with the Bloom level at which the material
// covers the entry — the paper's proposed extension ("it would make sense to
// classify materials with Bloom levels as well"). Only some ITCS 3145
// materials carry these annotations, mirroring a partially-adopted rollout.
func at(c material.Classification, b ontology.Bloom) material.Classification {
	c.Bloom = b
	return c
}

var (
	once     sync.Once
	nifty    *material.Collection
	peachy   *material.Collection
	itcs3145 *material.Collection
)

func build() {
	nifty = buildNifty()
	peachy = buildPeachy()
	itcs3145 = buildITCS3145()
	for _, c := range []*material.Collection{nifty, peachy, itcs3145} {
		if errs := c.Validate(ontology.CS13(), ontology.PDC12()); len(errs) > 0 {
			panic(fmt.Sprintf("corpus: collection %s invalid: %v", c.Name, errs[0]))
		}
	}
}

// Nifty returns the seeded Nifty Assignments collection (non-PDC materials
// for early CS courses, collected 2003–2018).
func Nifty() *material.Collection {
	once.Do(build)
	return nifty
}

// Peachy returns the seeded Peachy Parallel Assignments collection (the 11
// assignments presented at EduPar/EduHPC up to the paper's writing).
func Peachy() *material.Collection {
	once.Do(build)
	return peachy
}

// ITCS3145 returns the materials of ITCS 3145: Parallel and Distributed
// Computing at UNC Charlotte — 12 slide decks and 9 scaffolded assignments
// on shared-memory (pthreads, OpenMP) and distributed-memory (MPI,
// MapReduce-MPI) programming.
func ITCS3145() *material.Collection {
	once.Do(build)
	return itcs3145
}

// Collections returns the three seeded collections in paper order.
func Collections() []*material.Collection {
	once.Do(build)
	return []*material.Collection{nifty, peachy, itcs3145}
}

// ByName returns the collection with the given name, or nil.
func ByName(name string) *material.Collection {
	for _, c := range Collections() {
		if c.Name == name {
			return c
		}
	}
	return nil
}

// AllMaterials returns every seeded material across the three collections.
func AllMaterials() []*material.Material {
	var out []*material.Material
	for _, c := range Collections() {
		out = append(out, c.All()...)
	}
	return out
}
