package corpus

import (
	"fmt"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// buildITCS3145 seeds the materials of ITCS 3145: Parallel and Distributed
// Computing at UNC Charlotte — 12 slide decks and 9 scaffolded assignments.
// The class teaches programming and speedup on shared and distributed memory
// systems "by taking a dependency graph and scheduling approach rather than
// a performance and hardware approach" (Sec. IV-B). Accordingly its PDC12
// coverage concentrates in Programming, then Algorithms, leaving
// Architecture and Cross-Cutting mostly untouched, and its CS13 coverage is
// PD first, then AL, CN, and SDF, with partial OS/PL/AR — and deliberately
// no tooling, distributed-systems, or complexity-theory entries.
func buildITCS3145() *material.Collection {
	c := material.NewCollection("itcs3145", "ITCS 3145 Parallel and Distributed Computing")
	seq := 0
	add := func(kind material.Kind, title, desc string, cls []material.Classification, extra ...string) {
		seq++
		c.MustAdd(&material.Material{
			ID:              fmt.Sprintf("itcs3145-%02d-%s", seq, ontology.Slug(title)),
			Title:           title,
			Authors:         []string{"E. Saule"},
			URL:             "https://webpages.uncc.edu/esaule/ITCS3145/" + ontology.Slug(title),
			Description:     desc,
			Kind:            kind,
			Level:           material.Advanced,
			Language:        "C",
			Year:            2018,
			Tags:            extra,
			Classifications: cls,
		})
	}

	// -------------------------- 12 slide decks -------------------------
	add(material.Slides, "Introduction: Why Parallel Computing",
		"Motivates the course: the end of frequency scaling, multicore ubiquity, and what changes when computations run simultaneously.",
		tags(
			cs("PD", "Parallelism Fundamentals", "Multiple simultaneous computations"),
			cs("PD", "Parallelism Fundamentals", "Goals of parallelism versus concurrency: throughput versus controlling access to shared resources"),
			pdc("CC", "High-Level Themes", "Why and what is parallel and distributed computing"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "By the target machine model", "Shared memory programming"),
		), "lecture")
	add(material.Slides, "Complexity and Asymptotic Analysis Refresher",
		"Big-O notation, recurrences, and empirical timing discipline used throughout the course to reason about parallel costs.",
		tags(
			cs("AL", "Basic Analysis", "Big O notation: formal definition"),
			cs("AL", "Basic Analysis", "Asymptotic analysis of upper and expected complexity bounds"),
			cs("AL", "Basic Analysis", "Empirical measurements of performance"),
			pdc("AL", "Parallel and Distributed Models and Complexity", "Costs of computation", "Asymptotic analysis of parallel time and work"),
		), "lecture")
	add(material.Slides, "Task Graphs, Dependencies and Scheduling",
		"Models computations as dependency graphs; defines work and span and derives speedup bounds from list scheduling.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Dependency graphs and scheduling of parallel tasks"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Critical path, work, and span of a parallel computation"),
			cs("AL", "Advanced Data Structures Algorithms and Analysis", "Analysis of parallel task graphs: work, span and parallel speedup"),
			pdc("AL", "Parallel and Distributed Models and Complexity", "Notions from scheduling", "Dependencies and task graphs"),
			pdc("AL", "Parallel and Distributed Models and Complexity", "Notions from scheduling", "Greedy list scheduling"),
			pdc("AL", "Algorithmic Paradigms", "Series-parallel composition"),
		), "lecture")
	add(material.Slides, "Threads with pthreads",
		"Creating, joining, and coordinating POSIX threads; thread arguments, shared state, and the first speedup measurements.",
		tags(
			cs("PD", "Communication and Coordination", "Shared memory communication"),
			cs("OS", "Concurrency", "States and state diagrams of processes and threads"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Threads and thread libraries (e.g., pthreads)"),
			pdc("PR", "Semantics and Correctness Issues", "Tasks and threads"),
		), "lecture")
	add(material.Slides, "Synchronization and Data Races",
		"Races, critical sections, mutexes, and condition variables, with worked examples of broken and repaired counters.",
		tags(
			cs("PD", "Parallelism Fundamentals", "Programming errors not found in sequential programming: data races and lack of liveness"),
			cs("PD", "Communication and Coordination", "Mutual exclusion locks and their use"),
			cs("PD", "Communication and Coordination", "Atomicity: specifying and testing atomic behavior"),
			cs("OS", "Concurrency", "Implementing synchronization primitives: mutexes, semaphores, and condition variables"),
			pdc("PR", "Semantics and Correctness Issues", "Concurrency defects: data races"),
			pdc("PR", "Semantics and Correctness Issues", "Synchronization: critical regions"),
		), "lecture")
	add(material.Slides, "OpenMP",
		"Parallel regions, work-sharing loops, reductions, and scheduling clauses; how the compiler directives map onto threads.",
		tags(
			cs("PD", "Parallel Decomposition", "Data-parallel decomposition"),
			cs("PL", "Language Translation and Execution", "Interpretation versus compilation to native code versus compilation to portable intermediate representation"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Compiler directives and pragmas (e.g., OpenMP)"),
			pdc("PR", "Performance Issues", "Computation", "Static and dynamic scheduling and mapping"),
		), "lecture")
	add(material.Slides, "Parallel Algorithms: Reduction and Prefix",
		"Reduction trees and parallel-prefix computations; work-efficiency trade-offs between the naive and Blelloch scans.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel reduction"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel scan (parallel-prefix)"),
			pdc("AL", "Algorithmic Paradigms", "Reduction (map-reduce as a pattern, not the system)"),
			pdc("AL", "Algorithmic Paradigms", "Scan (parallel-prefix)"),
		), "lecture")
	add(material.Slides, "Parallel Sorting and Divide and Conquer",
		"Parallel merge sort and quicksort partitioning; recursion trees as task graphs and cutoff tuning.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel sorting algorithms"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Worst or average case O(N log N) sorting algorithms"),
			pdc("AL", "Algorithmic Problems", "Sorting and selection", "Parallel merge sort"),
			pdc("AL", "Algorithmic Paradigms", "Divide and conquer (parallel aspects)"),
			pdc("AL", "Algorithmic Paradigms", "Recursion (parallel aspects)"),
		), "lecture")
	add(material.Slides, "Distributed Memory and MPI",
		"Ranks, point-to-point messages, and deadlock pitfalls; how distributed memory changes algorithm design.",
		tags(
			cs("PD", "Communication and Coordination", "Message passing communication"),
			cs("PD", "Parallel Architecture", "Shared versus distributed memory architectures"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "By the target machine model", "Distributed memory programming"),
		), "lecture")
	add(material.Slides, "Collective Communication",
		"Broadcast, scatter, gather, and all-reduce: semantics, implementations, and cost models on a cluster.",
		tags(
			cs("PD", "Communication and Coordination", "Message passing communication"),
			cs("PD", "Parallel Performance", "Evaluation of communication overhead"),
			pdc("AL", "Algorithmic Problems", "Communication", "Broadcast"),
			pdc("AL", "Algorithmic Problems", "Communication", "Scatter and gather"),
		), "lecture")
	add(material.Slides, "MapReduce over MPI",
		"The map-reduce pattern and the MapReduce-MPI library; word counting and graph statistics as running examples.",
		tags(
			cs("PD", "Cloud Computing", "MapReduce and large-scale data-parallel frameworks"),
			cs("PD", "Parallel Decomposition", "Task-based decomposition"),
			pdc("AL", "Algorithmic Paradigms", "Reduction (map-reduce as a pattern, not the system)"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
		), "lecture")
	add(material.Slides, "Performance: Speedup, Amdahl and Load Balancing",
		"Speedup and efficiency in practice, Amdahl's argument, load imbalance diagnosis, and multicore cache effects.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Speedup, efficiency, and scalability of parallel programs"),
			cs("PD", "Parallel Performance", "Load balancing strategies"),
			cs("AR", "Multiprocessing and Alternative Architectures", "Shared multiprocessor memory systems and memory consistency"),
			cs("PD", "Parallel Architecture", "Memory issues: multiprocessor caches, cache coherence, and non-uniform memory access"),
			at(pdc("PR", "Performance Issues", "Data", "Amdahl's law"), ontology.BloomKnow),
			at(pdc("PR", "Performance Issues", "Data", "Speedup and efficiency"), ontology.BloomComprehend),
			pdc("PR", "Performance Issues", "Computation", "Load balancing"),
		), "lecture")

	// --------------------------- 9 assignments -------------------------
	add(material.Assignment, "Numerical Integration with the Rectangle Method",
		"Implement a sequential numerical integrator using the rectangle method from a provided formula; scaffolded with unit tests that check convergence on known integrals.",
		tags(
			cs("CN", "Numerical Analysis", "Numerical differentiation and integration"),
			cs("CN", "Numerical Analysis", "Quadrature methods: rectangle, trapezoidal, and Simpson's rules"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Development Methods", "Unit testing and test-case design"),
			cs("CN", "Numerical Analysis", "Error, stability, and convergence of numerical methods"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Parallel Numerical Integration with pthreads",
		"Parallelize the rectangle-method integrator over POSIX threads, partitioning the domain and reducing partial sums without races.",
		tags(
			cs("CN", "Numerical Analysis", "Numerical differentiation and integration"),
			cs("CN", "Processing", "Fundamental parallel computing: parallel decomposition of computational models"),
			cs("PD", "Parallel Decomposition", "Data-parallel decomposition"),
			cs("PD", "Communication and Coordination", "Mutual exclusion locks and their use"),
			cs("SDF", "Development Methods", "Unit testing and test-case design"),
			at(pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Threads and thread libraries (e.g., pthreads)"), ontology.BloomApply),
			at(pdc("PR", "Performance Issues", "Data", "Speedup and efficiency"), ontology.BloomComprehend),
			cs("CN", "Numerical Analysis", "Error, stability, and convergence of numerical methods"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Producer-Consumer with Condition Variables",
		"Build a bounded buffer connecting producer and consumer threads with condition variables; unit tests inject bursts to expose missed wakeups.",
		tags(
			cs("PD", "Communication and Coordination", "Producer-consumer coordination with bounded buffers"),
			cs("PD", "Communication and Coordination", "Conditional waiting: condition variables and barriers"),
			cs("OS", "Concurrency", "Implementing synchronization primitives: mutexes, semaphores, and condition variables"),
			cs("SDF", "Development Methods", "Unit testing and test-case design"),
			at(pdc("PR", "Semantics and Correctness Issues", "Synchronization: producer-consumer"), ontology.BloomApply),
			pdc("PR", "Semantics and Correctness Issues", "Tasks and threads"),
		), "assignment", "scaffolded")
	add(material.Assignment, "OpenMP Loop Parallelism on Matrix Operations",
		"Parallelize matrix-vector and matrix-matrix products with OpenMP pragmas, exploring schedule clauses and false-sharing pitfalls.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel matrix computations"),
			cs("PD", "Parallel Decomposition", "Data-parallel decomposition"),
			cs("SDF", "Fundamental Programming Concepts", "Functions and parameter passing"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Compiler directives and pragmas (e.g., OpenMP)"),
			pdc("AL", "Algorithmic Problems", "Specialized computations", "Matrix product"),
			pdc("PR", "Performance Issues", "Data", "False sharing"),
			cs("CN", "Processing", "Fundamental parallel computing: parallel decomposition of computational models"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Parallel Prefix Sum",
		"Implement work-efficient parallel prefix over large arrays and compare against the sequential scan at several core counts.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel scan (parallel-prefix)"),
			cs("AL", "Basic Analysis", "Empirical measurements of performance"),
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			pdc("AL", "Algorithmic Paradigms", "Scan (parallel-prefix)"),
			pdc("AL", "Parallel and Distributed Models and Complexity", "Costs of computation", "Asymptotic analysis of parallel time and work"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Parallel Merge Sort with Task Decomposition",
		"Sort with recursive tasks spawned down to a cutoff; students derive the task graph and measure the span empirically.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel sorting algorithms"),
			cs("PD", "Parallel Decomposition", "Task-based decomposition"),
			cs("PD", "Parallel Algorithms Analysis and Programming", "Critical path, work, and span of a parallel computation"),
			cs("AL", "Algorithmic Strategies", "Divide-and-conquer"),
			pdc("AL", "Algorithmic Problems", "Sorting and selection", "Parallel merge sort"),
			pdc("AL", "Algorithmic Paradigms", "Divide and conquer (parallel aspects)"),
			pdc("AL", "Parallel and Distributed Models and Complexity", "Notions from scheduling", "Dependencies and task graphs"),
			cs("AL", "Basic Analysis", "Recurrence relations and analysis of recursive algorithms"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Worst or average case O(N log N) sorting algorithms"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Heat Diffusion Stencil with MPI",
		"Solve a 1-D heat equation over MPI ranks with halo exchange; the provided tests check boundary handling and convergence.",
		tags(
			cs("CN", "Numerical Analysis", "Numerical solution of differential equations"),
			cs("PD", "Communication and Coordination", "Message passing communication"),
			cs("PD", "Parallel Performance", "Data management: impact of caching and data movement costs"),
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
			pdc("AL", "Algorithmic Problems", "Specialized computations", "Stencil computations"),
			pdc("PR", "Performance Issues", "Data", "Data distribution"),
			cs("CN", "Processing", "Computing costs: time, memory, and energy of a simulation"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Distributed Reduction and Broadcast with MPI",
		"Implement tree-based reduction and broadcast by hand, then compare with the library collectives on latency and bandwidth plots.",
		tags(
			cs("PD", "Parallel Algorithms Analysis and Programming", "Parallel reduction"),
			cs("PD", "Parallel Performance", "Evaluation of communication overhead"),
			cs("AL", "Basic Analysis", "Empirical measurements of performance"),
			pdc("AL", "Algorithmic Problems", "Communication", "Broadcast"),
			pdc("AL", "Algorithmic Problems", "Communication", "Scatter and gather"),
			pdc("PR", "Performance Issues", "Data", "Performance impact of data movement"),
		), "assignment", "scaffolded")
	add(material.Assignment, "Graph Statistics with MapReduce-MPI",
		"Compute degree distributions of a large web graph with the MapReduce-MPI library, reasoning about the shuffle as an all-to-all exchange.",
		tags(
			cs("PD", "Cloud Computing", "MapReduce and large-scale data-parallel frameworks"),
			cs("PD", "Parallel Decomposition", "Task-based decomposition"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Graphs and graph algorithms: representations"),
			cs("SDF", "Fundamental Programming Concepts", "Functions and parameter passing"),
			pdc("AL", "Algorithmic Paradigms", "Reduction (map-reduce as a pattern, not the system)"),
			pdc("PR", "Parallel Programming Paradigms and Notations", "Parallel programming frameworks and libraries", "Message passing libraries (e.g., MPI)"),
		), "assignment", "scaffolded", "dataset")

	return c
}
