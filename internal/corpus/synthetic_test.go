package corpus

import (
	"testing"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

func TestSyntheticValidAndDeterministic(t *testing.T) {
	opt := SyntheticOptions{N: 200, Seed: 42}
	c := Synthetic(opt)
	if c.Len() != 200 {
		t.Fatalf("Len = %d", c.Len())
	}
	if errs := c.Validate(ontology.CS13(), ontology.PDC12()); len(errs) != 0 {
		t.Fatalf("synthetic invalid: %v", errs[0])
	}
	// Deterministic for the same seed.
	c2 := Synthetic(opt)
	for i, m := range c.All() {
		m2 := c2.All()[i]
		if m.ID != m2.ID || m.Title != m2.Title || len(m.Classifications) != len(m2.Classifications) {
			t.Fatalf("nondeterministic at %d: %v vs %v", i, m, m2)
		}
	}
	// Different seeds differ somewhere.
	c3 := Synthetic(SyntheticOptions{N: 200, Seed: 43})
	same := true
	for i, m := range c.All() {
		if m.Title != c3.All()[i].Title {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical corpora")
	}
}

func TestSyntheticPDCFraction(t *testing.T) {
	pdc12 := ontology.PDC12()
	countPDC := func(c *material.Collection) int {
		n := 0
		for _, m := range c.All() {
			for _, cl := range m.Classifications {
				if pdc12.Has(cl.NodeID) {
					n++
					break
				}
			}
		}
		return n
	}
	lots := Synthetic(SyntheticOptions{N: 150, Seed: 7, PDCFraction: 0.9})
	few := Synthetic(SyntheticOptions{N: 150, Seed: 7, PDCFraction: 0.1})
	if countPDC(lots) <= countPDC(few) {
		t.Errorf("PDC fraction not respected: 0.9 -> %d, 0.1 -> %d", countPDC(lots), countPDC(few))
	}
	// Every material has at least one classification.
	for _, m := range lots.All() {
		if len(m.Classifications) == 0 {
			t.Fatalf("%s has no classifications", m.ID)
		}
	}
}
