package corpus

import (
	"fmt"

	"carcs/internal/material"
	"carcs/internal/ontology"
)

// buildNifty seeds the Nifty Assignments collection: classic, engaging
// assignments for early CS courses collected through the annual SIGCSE
// competition. As the paper reports for the real set, none of them touch
// PDC topics; their classifications live in SDF first, then PL, AL, and CN
// (Fig. 2a), with object-oriented programming commonly covered.
//
// Exactly six assignments — the six the paper names in Sec. IV-D — carry
// both "Arrays" and "Conditional and iterative control structures", which is
// what forms the Fig. 3 cluster with the four named Peachy assignments.
func buildNifty() *material.Collection {
	c := material.NewCollection("nifty", "Nifty Assignments")
	add := func(year int, title, lang string, level material.Level, desc string, cls []material.Classification, extra ...string) {
		c.MustAdd(&material.Material{
			ID:              ontology.Slug(title),
			Title:           title,
			Authors:         []string{"Nifty contributor"},
			URL:             fmt.Sprintf("http://nifty.stanford.edu/%d/%s/", year, ontology.Slug(title)),
			Description:     desc,
			Kind:            material.Assignment,
			Level:           level,
			Language:        lang,
			Year:            year,
			Tags:            extra,
			Classifications: cls,
		})
	}

	// ---- The six Fig. 3 cluster members (named in the paper) ----------
	add(2013, "Hurricane Tracker", "Java", material.CS1,
		"Parse historical hurricane position data into arrays and loop over it to animate storm tracks on a map, computing distances and wind categories along the way.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Programming Concepts", "Simple input and output"),
			cs("CN", "Interactive Visualization", "Graphing and charting of simulation output"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "weather", "dataset")
	add(2015, "2048 in Python", "Python", material.CS1,
		"Implement the sliding-tile game 2048 on a four-by-four grid of integers, with loops that compact and merge rows in each direction.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Programming Concepts", "Functions and parameter passing"),
		), "game")
	add(2011, "Campus Shuttle", "Java", material.CS2,
		"Simulate a campus shuttle line: riders arrive into arrays of stops, and iterative update rules move buses and compute waiting statistics.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("CN", "Introduction to Modeling and Simulation", "Simulations as dynamic modeling"),
			cs("CN", "Introduction to Modeling and Simulation", "Presentation of simulation results"),
		), "simulation")
	add(2010, "Nbody Simulation", "Java", material.CS2,
		"Step a gravitational n-body system: arrays of positions and velocities are updated in a time loop using Newtonian force accumulation.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("CN", "Introduction to Modeling and Simulation", "Models as abstractions of situations"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Simple numerical algorithms"),
			cs("PL", "Object-Oriented Programming", "Object-oriented design: decomposition into objects carrying state and behavior"),
		), "physics", "simulation")
	add(2012, "Image Editor", "Python", material.CS1,
		"Apply per-pixel filters — grayscale, invert, blur — by looping over the two-dimensional pixel array of an image.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("GV", "Fundamental Concepts", "Raster and vector image representations"),
		), "media")
	add(2008, "Uno", "Java", material.CS1,
		"Play the card game Uno against simple computer strategies; hands are arrays of cards scanned in loops to find legal plays.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Programming Concepts", "Variables and primitive data types"),
			cs("PL", "Object-Oriented Programming", "Collection classes and iterators"),
		), "game")

	// ---- The rest of the collection -----------------------------------
	add(2003, "Game of Life", "Java", material.CS1,
		"Implement Conway's Game of Life on a grid and watch gliders emerge; a classic cellular-automaton exercise in nested iteration.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Data Structures", "Records/structs"),
			cs("CN", "Modeling and Simulation", "Cellular automata as a modeling formalism"),
			cs("CN", "Introduction to Modeling and Simulation", "Presentation of simulation results"),
		), "simulation")
	add(2003, "Random Writer", "Java", material.CS2,
		"Generate text in the style of an input document with an order-k Markov model built from character maps.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Maps"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("IS", "Natural Language Processing", "N-gram language models"),
		), "text")
	add(2004, "Evil Hangman", "Java", material.CS2,
		"A hangman game that cheats by keeping the largest family of candidate words consistent with the guesses, stored in maps of word sets.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Maps"),
			cs("SDF", "Fundamental Data Structures", "Sets"),
			cs("AL", "Algorithmic Strategies", "Brute-force algorithms"),
			cs("PL", "Object-Oriented Programming", "Collection classes and iterators"),
		), "game", "text")
	add(2004, "Boggle", "Java", material.CS2,
		"Find all dictionary words in a letter grid with recursive backtracking and prefix pruning.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
			cs("AL", "Algorithmic Strategies", "Recursive backtracking"),
			cs("SDF", "Fundamental Data Structures", "Sets"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "game")
	add(2005, "Mastermind", "Python", material.CS0,
		"Guess a hidden color code with scored feedback; loops compare pegs and count exact and partial matches.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Programming Concepts", "Expressions and assignments"),
		), "game")
	add(2005, "Word Ladder", "C++", material.CS2,
		"Transform one word into another changing a letter at a time; breadth-first search over the implicit word graph using queues.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Queues"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Depth- and breadth-first traversals"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "text")
	add(2006, "Sudoku Solver", "Java", material.CS2,
		"Solve Sudoku boards with constraint-guided recursive backtracking.",
		tags(
			cs("AL", "Algorithmic Strategies", "Recursive backtracking"),
			cs("IS", "Basic Search Strategies", "Constraint satisfaction problems and backtracking"),
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
			cs("PL", "Object-Oriented Programming", "Encapsulation and information hiding"),
		), "game")
	add(2006, "Huffman Coding", "C++", material.CS2,
		"Build Huffman trees from character frequencies and compress files; a greedy algorithm over priority queues.",
		tags(
			cs("AL", "Algorithmic Strategies", "Greedy algorithms"),
			cs("SDF", "Fundamental Data Structures", "Priority queues as abstract data types"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Binary search trees"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "compression")
	add(2007, "Maze Solver", "Java", material.CS2,
		"Escape randomly generated mazes with depth-first search over a grid graph, tracking visited cells in stacks.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Stacks"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Depth- and breadth-first traversals"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Graphs and graph algorithms: representations"),
			cs("PL", "Object-Oriented Programming", "Object-oriented design: decomposition into objects carrying state and behavior"),
		), "game")
	add(2007, "Tetris", "Java", material.CS2,
		"Implement falling-piece mechanics, rotation, and row clearing in an object-oriented game loop.",
		tags(
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
			cs("PL", "Object-Oriented Programming", "Subclasses, inheritance, and method overriding"),
			cs("PL", "Event-Driven and Reactive Programming", "Events and event handlers"),
		), "game", "gui")
	add(2008, "Darwin World", "Java", material.CS2,
		"Creatures with species-specific programs roam a world grid; polymorphic dispatch drives their behavior each turn.",
		tags(
			cs("PL", "Object-Oriented Programming", "Dynamic dispatch: definition of method-call"),
			cs("PL", "Object-Oriented Programming", "Object-oriented design: decomposition into objects carrying state and behavior"),
			cs("CN", "Modeling and Simulation", "Agent-based modeling"),
			cs("CN", "Introduction to Modeling and Simulation", "Presentation of simulation results"),
		), "simulation")
	add(2009, "Mandelbrot Viewer", "C", material.CS2,
		"Render the Mandelbrot set by iterating the complex quadratic map per pixel and coloring by escape time.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("GV", "Fundamental Concepts", "Color models: RGB, HSV, and their uses"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Simple numerical algorithms"),
		), "fractal", "media")
	add(2009, "Minesweeper", "Python", material.CS1,
		"Reveal a minefield with flood-fill expansion of empty regions and neighbor counting.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("SDF", "Fundamental Programming Concepts", "Functions and parameter passing"),
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
		), "game")
	add(2010, "Spell Checker", "Java", material.CS2,
		"Check documents against a hashed dictionary and suggest corrections by edit distance.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Hash tables, including strategies for avoiding and resolving collisions"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("AL", "Algorithmic Strategies", "Dynamic programming"),
			cs("PL", "Object-Oriented Programming", "Collection classes and iterators"),
		), "text")
	add(2010, "Eliza Chatbot", "Python", material.CS1,
		"A pattern-matching conversational agent in the style of the 1966 ELIZA program, built on string substitution rules.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("IS", "Natural Language Processing", "Tokenization, stemming, and stop words"),
			cs("SDF", "Fundamental Programming Concepts", "Variables and primitive data types"),
		), "text", "ai")
	add(2011, "Flesch Readability Index", "C", material.CS1,
		"Compute readability scores of documents by counting syllables, words, and sentences in a single pass.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Programming Concepts", "Simple input and output"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
		), "text")
	add(2011, "Turtle Graphics Fractals", "Python", material.CS0,
		"Draw snowflakes and trees with recursive turtle-graphics procedures.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
			cs("SDF", "Algorithms and Design", "Problem-solving strategies: iteration versus recursion, divide-and-conquer"),
			cs("GV", "Fundamental Concepts", "Raster and vector image representations"),
		), "fractal", "media")
	add(2012, "Text Adventure Engine", "Java", material.CS2,
		"Build a small interactive-fiction engine: rooms, items, and commands modeled as cooperating classes.",
		tags(
			cs("PL", "Object-Oriented Programming", "Object-oriented design: decomposition into objects carrying state and behavior"),
			cs("PL", "Object-Oriented Programming", "Encapsulation and information hiding"),
			cs("SDF", "Fundamental Data Structures", "Maps"),
		), "game")
	add(2012, "Markov Music Box", "Python", material.CS2,
		"Learn note-transition probabilities from melodies and generate new tunes from the resulting chains.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Maps"),
			cs("DS", "Discrete Probability", "Random variables and expectation"),
			cs("IS", "Natural Language Processing", "N-gram language models"),
		), "media")
	add(2013, "Social Network Analysis", "Python", material.CS2,
		"Load a friendship graph and compute degrees, mutual friends, and shortest introduction chains.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Graphs and graph algorithms: representations"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Shortest-path algorithms"),
			cs("SDF", "Fundamental Data Structures", "Sets"),
		), "dataset", "graphs")
	add(2013, "DNA Sequence Alignment", "Java", material.CS2,
		"Align genomic strings with dynamic programming and visualize the edit matrix.",
		tags(
			cs("AL", "Algorithmic Strategies", "Dynamic programming"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("AL", "Basic Analysis", "Time and space trade-offs in algorithms"),
			cs("PL", "Object-Oriented Programming", "Encapsulation and information hiding"),
		), "science", "dataset")
	add(2014, "Flappy Bird Clone", "JavaScript", material.CS1,
		"Recreate the scrolling obstacle game with sprite objects, an animation loop, and collision tests.",
		tags(
			cs("PL", "Event-Driven and Reactive Programming", "Events and event handlers"),
			cs("GV", "Fundamental Concepts", "Double buffering and the animation loop"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "game", "gui")
	add(2014, "Weather Data Explorer", "Python", material.CS1,
		"Summarize decades of daily temperature readings: extremes, averages, and trend lines from a real dataset.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("SDF", "Fundamental Programming Concepts", "Simple input and output"),
			cs("CN", "Interactive Visualization", "Graphing and charting of simulation output"),
		), "dataset", "weather")
	add(2014, "Recursive Art Gallery", "Python", material.CS1,
		"Produce Sierpinski triangles and recursive trees, exploring how base cases shape pictures.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
			cs("GV", "Fundamental Concepts", "Raster and vector image representations"),
		), "fractal", "media")
	add(2015, "Traveling Salesperson Art", "Python", material.CS2,
		"Approximate TSP tours over image-derived city sets with nearest-neighbor and 2-opt heuristics, rendering the tour as line art.",
		tags(
			cs("AL", "Algorithmic Strategies", "Heuristics"),
			cs("AL", "Algorithmic Strategies", "Greedy algorithms"),
			cs("GV", "Fundamental Concepts", "Raster and vector image representations"),
		), "media")
	add(2015, "Seam Carving", "Java", material.CS2,
		"Resize images content-aware by removing minimal-energy seams found with dynamic programming.",
		tags(
			cs("AL", "Algorithmic Strategies", "Dynamic programming"),
			cs("GV", "Fundamental Concepts", "Raster and vector image representations"),
			cs("AL", "Basic Analysis", "Time and space trade-offs in algorithms"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "media")
	add(2016, "Emoji Cipher", "Python", material.CS0,
		"Encrypt messages by mapping letters to emoji with substitution tables, then break a friend's cipher with frequency counts.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Maps"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("IAS", "Cryptography", "Symmetric key ciphers"),
		), "security", "text")
	add(2016, "Twitter Trends", "Python", material.CS1,
		"Tokenize a feed of tweets, count hashtags in maps, and chart the most frequent topics per region.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Maps"),
			cs("IS", "Natural Language Processing", "Text classification and sentiment analysis"),
			cs("SDF", "Fundamental Programming Concepts", "Simple input and output"),
		), "dataset", "social-media")
	add(2016, "Photomosaic", "Java", material.CS2,
		"Assemble a target picture from thousands of tile images chosen by nearest average color.",
		tags(
			cs("GV", "Fundamental Concepts", "Color models: RGB, HSV, and their uses"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Sequential and binary search algorithms"),
			cs("PL", "Object-Oriented Programming", "Collection classes and iterators"),
			cs("PL", "Object-Oriented Programming", "Object-oriented design: decomposition into objects carrying state and behavior"),
		), "media")
	add(2017, "Baseball Statistics", "Python", material.CS1,
		"Answer questions over a century of batting records: leaders, averages, and era comparisons using structured records.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Records/structs"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("IM", "Information Management Concepts", "Basic information storage and retrieval concepts"),
		), "dataset", "sports")
	add(2017, "Pac-Man Ghost AI", "Java", material.CS2,
		"Implement the four classic ghost behaviors with per-ghost strategy subclasses chasing the player on a maze graph.",
		tags(
			cs("PL", "Object-Oriented Programming", "Subclasses, inheritance, and method overriding"),
			cs("IS", "Basic Search Strategies", "Uninformed search: breadth-first and depth-first"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Shortest-path algorithms"),
			cs("PL", "Object-Oriented Programming", "Dynamic dispatch: definition of method-call"),
		), "game", "ai")
	add(2018, "Wikipedia Link Race", "Python", material.CS2,
		"Find short click-paths between articles with breadth-first search over a crawled link graph.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Depth- and breadth-first traversals"),
			cs("SDF", "Fundamental Data Structures", "Queues"),
			cs("NC", "Networked Applications", "HTTP as an application-layer protocol"),
		), "dataset", "graphs")
	add(2007, "Rock Paper Scissors Tournament", "Python", material.CS0,
		"Pit strategy functions against each other over many rounds and tally a round-robin tournament.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Functions and parameter passing"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
			cs("DS", "Discrete Probability", "Finite probability spaces and probability measures"),
		), "game")
	add(2008, "Library Catalog", "Java", material.CS2,
		"An object-oriented catalog of books, patrons, and loans exercising encapsulation and interfaces.",
		tags(
			cs("PL", "Object-Oriented Programming", "Encapsulation and information hiding"),
			cs("PL", "Object-Oriented Programming", "Object interfaces and abstract classes"),
			cs("SDF", "Fundamental Data Structures", "Linked lists"),
		))
	add(2009, "Bank Account Hierarchy", "Java", material.CS1,
		"Model checking, savings, and credit accounts as a class hierarchy with overridden withdrawal rules.",
		tags(
			cs("PL", "Object-Oriented Programming", "Subclasses, inheritance, and method overriding"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		))
	add(2009, "Polynomial Calculator", "C++", material.CS2,
		"Represent sparse polynomials as linked lists and implement arithmetic with operator overloading.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Linked lists"),
			cs("SDF", "Fundamental Data Structures", "References and aliasing"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Simple numerical algorithms"),
		))
	add(2012, "Caesar Cipher Cracker", "Python", material.CS1,
		"Break shift ciphers by scoring all rotations against English letter frequencies.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("IAS", "Cryptography", "Symmetric key ciphers"),
			cs("SDF", "Fundamental Programming Concepts", "Conditional and iterative control structures"),
		), "security", "text")
	add(2013, "Connect Four AI", "Java", material.CS2,
		"Play Connect Four with a minimax opponent exploring move trees to a fixed depth.",
		tags(
			cs("IS", "Basic Search Strategies", "Two-player games: minimax search and alpha-beta pruning"),
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
			cs("PL", "Object-Oriented Programming", "Object interfaces and abstract classes"),
		), "game", "ai")
	add(2014, "Memory Matching Game", "JavaScript", material.CS0,
		"A click-to-reveal matching game exercising event handlers and simple state machines.",
		tags(
			cs("PL", "Event-Driven and Reactive Programming", "Events and event handlers"),
			cs("PL", "Event-Driven and Reactive Programming", "Callback registration and propagation of events"),
			cs("HCI", "Designing Interaction", "Principles of graphical user interface design"),
		), "game", "gui")
	add(2015, "Checkout Line Simulator", "Java", material.CS2,
		"Model grocery checkout queues with discrete-event simulation and compare single-line versus multi-line policies.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Queues"),
			cs("CN", "Modeling and Simulation", "Discrete-event simulation"),
			cs("DS", "Discrete Probability", "Random variables and expectation"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "simulation")
	add(2016, "Elevator Scheduler", "Java", material.CS2,
		"Serve floor requests for a bank of elevators; compare greedy and scan-order strategies on waiting time.",
		tags(
			cs("AL", "Algorithmic Strategies", "Greedy algorithms"),
			cs("CN", "Modeling and Simulation", "Discrete-event simulation"),
			cs("SDF", "Fundamental Data Structures", "Queues"),
			cs("PL", "Object-Oriented Programming", "Object-oriented design: decomposition into objects carrying state and behavior"),
		), "simulation")
	add(2017, "Movie Recommender", "Python", material.CS2,
		"Recommend films from a ratings dataset with user-user similarity over rating maps.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Maps"),
			cs("IS", "Basic Machine Learning", "k-nearest neighbor classification"),
			cs("IM", "Information Management Concepts", "Basic information storage and retrieval concepts"),
		), "dataset")
	add(2018, "Spam Filter", "Python", material.CS2,
		"Classify email as spam or ham with a naive Bayes model over bag-of-words counts.",
		tags(
			cs("IS", "Basic Machine Learning", "Naive Bayes classifiers"),
			cs("IS", "Basic Machine Learning", "Feature representations: bag-of-words and TF-IDF weighting"),
			cs("SDF", "Fundamental Data Structures", "Maps"),
		), "text", "ai")
	add(2004, "Sorting Out Sorting", "Java", material.CS2,
		"Animate insertion, selection, and merge sort side by side and measure comparisons empirically.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Worst case quadratic sorting algorithms"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Worst or average case O(N log N) sorting algorithms"),
			cs("AL", "Basic Analysis", "Empirical measurements of performance"),
		))
	add(2005, "Anagram Families", "C++", material.CS2,
		"Group a dictionary into anagram families by canonical sorted keys in a hash map.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Hash tables, including strategies for avoiding and resolving collisions"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("PL", "Object-Oriented Programming", "Object interfaces and abstract classes"),
		), "text")
	add(2010, "Family Tree Explorer", "Java", material.CS2,
		"Answer ancestry queries over genealogy trees with recursive traversals.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Binary search trees"),
			cs("SDF", "Fundamental Programming Concepts", "The concept of recursion as a programming technique"),
			cs("SDF", "Fundamental Data Structures", "References and aliasing"),
		))
	add(2011, "Chess Board Coverage", "Python", material.CS2,
		"Place N queens and knight's tours with backtracking, visualizing the search as it runs.",
		tags(
			cs("AL", "Algorithmic Strategies", "Recursive backtracking"),
			cs("IS", "Basic Search Strategies", "Constraint satisfaction problems and backtracking"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "game")
	add(2013, "Zombie Outbreak Simulator", "Java", material.CS2,
		"Simulate infection spread on a population grid with probabilistic state transitions per tick.",
		tags(
			cs("CN", "Modeling and Simulation", "Agent-based modeling"),
			cs("DS", "Discrete Probability", "Conditional probability and Bayes' theorem"),
			cs("SDF", "Fundamental Data Structures", "Records/structs"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
			cs("CN", "Introduction to Modeling and Simulation", "Presentation of simulation results"),
		), "simulation")
	add(2014, "Unit Test Detective", "Java", material.CS1,
		"Given a buggy library and its specification, write unit tests that isolate each defect.",
		tags(
			cs("SDF", "Development Methods", "Unit testing and test-case design"),
			cs("SDF", "Development Methods", "Debugging strategies and tools"),
			cs("SDF", "Development Methods", "Program correctness: the concept of a specification"),
		), "testing")
	add(2015, "Refactoring Kata", "Java", material.CS2,
		"Transform a tangle of copy-pasted code into clean methods and classes while keeping tests green.",
		tags(
			cs("SDF", "Development Methods", "Documentation and program style standards"),
			cs("SDF", "Algorithms and Design", "Structured decomposition into functions and modules"),
			cs("PL", "Object-Oriented Programming", "Encapsulation and information hiding"),
		), "testing")
	add(2016, "Password Strength Meter", "JavaScript", material.CS1,
		"Score password strength live in the browser with entropy estimates and common-pattern checks.",
		tags(
			cs("IAS", "Foundational Concepts in Security", "Authentication and authorization, access control"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("PL", "Event-Driven and Reactive Programming", "Events and event handlers"),
		), "security", "gui")
	add(2017, "Map Coloring", "Python", material.CS2,
		"Color real state maps with four colors via backtracking over adjacency graphs.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Graphs and graph algorithms: representations"),
			cs("IS", "Basic Search Strategies", "Constraint satisfaction problems and backtracking"),
		), "graphs")
	add(2018, "Stock Market Backtester", "Python", material.CS2,
		"Replay historical prices and evaluate trading strategies expressed as functions.",
		tags(
			cs("SDF", "Fundamental Programming Concepts", "Functions and parameter passing"),
			cs("PL", "Functional Programming", "Higher-order functions: map, filter, and reduce"),
			cs("CN", "Interactive Visualization", "Graphing and charting of simulation output"),
		), "dataset", "finance")
	add(2004, "Sieve of Eratosthenes", "C", material.CS1,
		"Generate primes with the classic sieve over a boolean array and measure how the count grows.",
		tags(
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("AL", "Fundamental Data Structures and Algorithms", "Simple numerical algorithms"),
			cs("AL", "Basic Analysis", "Empirical measurements of performance"),
		))
	add(2005, "Vigenere Vault", "Java", material.CS2,
		"Implement the Vigenere cipher and attack it with index-of-coincidence analysis.",
		tags(
			cs("IAS", "Cryptography", "Symmetric key ciphers"),
			cs("SDF", "Fundamental Data Structures", "Strings and string processing"),
			cs("DS", "Discrete Probability", "Finite probability spaces and probability measures"),
		), "security")
	add(2013, "Battleship Probability", "Python", material.CS2,
		"Sink ships faster by maintaining a probability heat map over the board and firing at the mode.",
		tags(
			cs("DS", "Discrete Probability", "Conditional probability and Bayes' theorem"),
			cs("SDF", "Fundamental Data Structures", "Arrays"),
			cs("IS", "Basic Search Strategies", "Heuristic search: hill climbing and A*"),
		), "game", "ai")
	add(2015, "URL Shortener", "Python", material.CS2,
		"Build a tiny web service mapping short codes to links with a hash table and a REST endpoint.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Hash tables, including strategies for avoiding and resolving collisions"),
			cs("NC", "Networked Applications", "HTTP as an application-layer protocol"),
			cs("PBD", "Web Platforms", "RESTful application programming interfaces"),
		), "web")
	add(2016, "Graphical Histogram Studio", "Java", material.CS1,
		"Read survey data and render histograms and scatter plots with a simple drawing library.",
		tags(
			cs("CN", "Interactive Visualization", "Graphing and charting of simulation output"),
			cs("SDF", "Fundamental Programming Concepts", "Simple input and output"),
			cs("GV", "Visualization", "Visualization of one-dimensional and two-dimensional scalar fields"),
			cs("PL", "Object-Oriented Programming", "Definition of classes: fields, methods, and constructors"),
		), "dataset", "media")
	add(2017, "Maze Generator", "C++", material.CS2,
		"Generate perfect mazes with randomized depth-first search and union-find based algorithms, then race solvers through them.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Depth- and breadth-first traversals"),
			cs("AL", "Advanced Data Structures Algorithms and Analysis", "Union-find and disjoint sets"),
			cs("SDF", "Fundamental Data Structures", "Stacks"),
			cs("PL", "Object-Oriented Programming", "Encapsulation and information hiding"),
		), "game")
	add(2018, "Book Recommendation Graph", "Python", material.CS2,
		"Connect books by shared readers and recommend along strong edges of the co-reading graph.",
		tags(
			cs("AL", "Fundamental Data Structures and Algorithms", "Graphs and graph algorithms: representations"),
			cs("SDF", "Fundamental Data Structures", "Sets"),
			cs("IM", "Information Management Concepts", "Basic information storage and retrieval concepts"),
		), "dataset", "graphs")

	return c
}
