package material

import (
	"reflect"
	"testing"

	"carcs/internal/ontology"
)

func testOntology(t *testing.T) *ontology.Ontology {
	t.Helper()
	b := ontology.NewBuilder("T")
	a := b.Area("AA", "Area")
	u := a.Unit("Unit", 1)
	u.Topic("Alpha", ontology.TierCore1)
	u.Topic("Beta", ontology.TierCore1)
	u.Topic("Gamma", ontology.TierElective)
	o, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

func valid(o *ontology.Ontology) *Material {
	return &Material{
		ID: "m-one", Title: "M One", Kind: Assignment, Level: CS1,
		Classifications: []Classification{
			{NodeID: "t/aa/unit/alpha"},
			{NodeID: "t/aa/unit/beta", Bloom: ontology.BloomApply},
		},
	}
}

func TestValidateOK(t *testing.T) {
	o := testOntology(t)
	if errs := valid(o).Validate(o); len(errs) != 0 {
		t.Errorf("valid material rejected: %v", errs)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	o := testOntology(t)
	cases := []struct {
		name   string
		mutate func(*Material)
	}{
		{"bad id", func(m *Material) { m.ID = "Not A Slug" }},
		{"empty id", func(m *Material) { m.ID = "" }},
		{"empty title", func(m *Material) { m.Title = "  " }},
		{"bad kind", func(m *Material) { m.Kind = "poem" }},
		{"bad level", func(m *Material) { m.Level = "CS99" }},
		{"dangling classification", func(m *Material) {
			m.Classifications = append(m.Classifications, Classification{NodeID: "t/aa/unit/ghost"})
		}},
		{"duplicate classification", func(m *Material) {
			m.Classifications = append(m.Classifications, Classification{NodeID: "t/aa/unit/alpha"})
		}},
		{"structural classification", func(m *Material) {
			m.Classifications = append(m.Classifications, Classification{NodeID: "t/aa/unit"})
		}},
	}
	for _, c := range cases {
		m := valid(o)
		c.mutate(m)
		if errs := m.Validate(o); len(errs) == 0 {
			t.Errorf("%s: not detected", c.name)
		}
	}
}

func TestClassificationHelpers(t *testing.T) {
	o := testOntology(t)
	m := valid(o)
	ids := m.ClassificationIDs()
	if !reflect.DeepEqual(ids, []string{"t/aa/unit/alpha", "t/aa/unit/beta"}) {
		t.Errorf("ClassificationIDs = %v", ids)
	}
	if !m.HasClassification("t/aa/unit/alpha") || m.HasClassification("t/aa/unit/gamma") {
		t.Error("HasClassification misbehaves")
	}
	if !m.ClassifiedIn(o, "t/aa") || !m.ClassifiedIn(o, "t/aa/unit/alpha") {
		t.Error("ClassifiedIn false negative")
	}
	if m.ClassifiedIn(o, "t/aa/unit/gamma") {
		t.Error("ClassifiedIn false positive")
	}
	other := &Material{ID: "m-two", Title: "M Two", Kind: Slides, Level: CS2,
		Classifications: []Classification{
			{NodeID: "t/aa/unit/beta"},
			{NodeID: "t/aa/unit/gamma"},
		}}
	if got := m.SharedClassifications(other); !reflect.DeepEqual(got, []string{"t/aa/unit/beta"}) {
		t.Errorf("SharedClassifications = %v", got)
	}
	if got := other.SharedClassifications(m); !reflect.DeepEqual(got, []string{"t/aa/unit/beta"}) {
		t.Errorf("SharedClassifications not symmetric: %v", got)
	}
}

func TestSearchText(t *testing.T) {
	m := &Material{Title: "Fractal Zoom", Description: "render frames", Language: "C",
		Tags: []string{"media"}, Datasets: []string{"frames.csv"}}
	txt := m.SearchText()
	for _, want := range []string{"Fractal Zoom", "render frames", "C", "media", "frames.csv"} {
		if !containsStr(txt, want) {
			t.Errorf("SearchText missing %q: %q", want, txt)
		}
	}
}

func TestCollection(t *testing.T) {
	o := testOntology(t)
	c := NewCollection("test", "Test Collection")
	m := valid(o)
	if err := c.Add(m); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&Material{ID: "m-one", Title: "Dup", Kind: Assignment, Level: CS1}); err == nil {
		t.Error("duplicate id accepted")
	}
	if m.Collection != "test" {
		t.Errorf("collection not stamped: %q", m.Collection)
	}
	if c.Len() != 1 || c.Get("m-one") != m || c.Get("ghost") != nil {
		t.Error("lookup misbehaves")
	}
	all := c.All()
	if len(all) != 1 || all[0] != m {
		t.Error("All misbehaves")
	}
	got := c.Filter(func(mm *Material) bool { return mm.Kind == Assignment })
	if len(got) != 1 {
		t.Error("Filter misbehaves")
	}
	if errs := c.Validate(o); len(errs) != 0 {
		t.Errorf("Validate = %v", errs)
	}
	mustPanicMat(t, func() { c.MustAdd(&Material{ID: "m-one", Title: "Dup", Kind: Assignment, Level: CS1}) })
}

func TestKindLevelValidators(t *testing.T) {
	for _, k := range []Kind{Assignment, Slides, Exam, Video, Chapter, Demo} {
		if !ValidKind(k) {
			t.Errorf("ValidKind(%q) false", k)
		}
	}
	if ValidKind("haiku") {
		t.Error("invalid kind accepted")
	}
	for _, l := range []Level{CS0, CS1, CS2, Intermediate, Advanced} {
		if !ValidLevel(l) {
			t.Errorf("ValidLevel(%q) false", l)
		}
	}
	if ValidLevel("CS9") {
		t.Error("invalid level accepted")
	}
}

func containsStr(haystack, needle string) bool {
	return len(haystack) >= len(needle) && (func() bool {
		for i := 0; i+len(needle) <= len(haystack); i++ {
			if haystack[i:i+len(needle)] == needle {
				return true
			}
		}
		return false
	})()
}

func mustPanicMat(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}
