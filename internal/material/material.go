// Package material defines the pedagogical-material model of CAR-CS:
// assignments, lecture slides, exams, videos, and book chapters, together
// with their descriptive metadata (title, authors, URL, description, course
// level, programming language, datasets) and their classifications against
// curriculum ontologies.
package material

import (
	"fmt"
	"sort"
	"strings"

	"carcs/internal/ontology"
)

// Kind is the type of a pedagogical material.
type Kind string

// Material kinds. The paper classifies "assignments, lecture slides, exams,
// video lectures, book chapters, etc.".
const (
	Assignment Kind = "assignment"
	Slides     Kind = "slides"
	Exam       Kind = "exam"
	Video      Kind = "video"
	Chapter    Kind = "chapter"
	Demo       Kind = "demo"
)

// ValidKind reports whether k is one of the declared kinds.
func ValidKind(k Kind) bool {
	switch k {
	case Assignment, Slides, Exam, Video, Chapter, Demo:
		return true
	}
	return false
}

// Level is the course level a material targets.
type Level string

// Course levels, following the CS0/CS1/CS2 vocabulary of the repositories
// CAR-CS ingests plus the levels needed for the ITCS 3145 materials.
const (
	CS0          Level = "CS0"
	CS1          Level = "CS1"
	CS2          Level = "CS2"
	Intermediate Level = "intermediate"
	Advanced     Level = "advanced"
)

// ValidLevel reports whether l is one of the declared levels.
func ValidLevel(l Level) bool {
	switch l {
	case CS0, CS1, CS2, Intermediate, Advanced:
		return true
	}
	return false
}

// Classification tags a material with one ontology entry, optionally at a
// Bloom level (the paper's proposed extension: "it would make sense to
// classify materials with Bloom levels as well").
type Classification struct {
	// NodeID is the ontology entry key, e.g.
	// "acm-ieee-cs-curricula-2013/sdf/fundamental-data-structures/arrays".
	NodeID string
	// Bloom is the depth at which the material covers the entry;
	// BloomUnspecified when the classifier did not rate it.
	Bloom ontology.Bloom
}

// Material is one pedagogical material with metadata and classifications.
type Material struct {
	// ID is a unique slug, stable across runs.
	ID string
	// Title is the display title.
	Title string
	// Authors lists author names.
	Authors []string
	// URL points at the original material.
	URL string
	// Description is the abstract used for free-text search and
	// classification suggestion.
	Description string
	// Kind is the material type.
	Kind Kind
	// Level is the targeted course level.
	Level Level
	// Language is the programming language, if any.
	Language string
	// Datasets lists real-world datasets the material uses (the CORGIS
	// dimension the paper folds in).
	Datasets []string
	// Year is the publication year, zero if unknown.
	Year int
	// Collection names the corpus the material belongs to ("nifty",
	// "peachy", "itcs3145", or a user collection).
	Collection string
	// Tags are free-form labels.
	Tags []string
	// Classifications are the ontology entries this material covers.
	Classifications []Classification
}

// Clone returns a deep copy of the material; mutating the copy never
// affects the original. Systems that ingest shared materials (e.g. the
// package-level corpus singletons) clone them so edits stay local.
func (m *Material) Clone() *Material {
	cp := *m
	cp.Authors = append([]string(nil), m.Authors...)
	cp.Datasets = append([]string(nil), m.Datasets...)
	cp.Tags = append([]string(nil), m.Tags...)
	cp.Classifications = append([]Classification(nil), m.Classifications...)
	return &cp
}

// ClassificationIDs returns the sorted set of classification node IDs.
func (m *Material) ClassificationIDs() []string {
	out := make([]string, 0, len(m.Classifications))
	seen := make(map[string]bool, len(m.Classifications))
	for _, c := range m.Classifications {
		if !seen[c.NodeID] {
			seen[c.NodeID] = true
			out = append(out, c.NodeID)
		}
	}
	sort.Strings(out)
	return out
}

// HasClassification reports whether the material is tagged with the node.
func (m *Material) HasClassification(nodeID string) bool {
	for _, c := range m.Classifications {
		if c.NodeID == nodeID {
			return true
		}
	}
	return false
}

// ClassifiedIn reports whether any classification lies in the subtree of
// rootID within the given ontology.
func (m *Material) ClassifiedIn(o *ontology.Ontology, rootID string) bool {
	for _, c := range m.Classifications {
		if o.Within(c.NodeID, rootID) {
			return true
		}
	}
	return false
}

// SharedClassifications returns the classification node IDs present in both
// materials, sorted. Figure 3 of the paper draws an edge when this set has
// at least two elements.
func (m *Material) SharedClassifications(other *Material) []string {
	mine := make(map[string]bool, len(m.Classifications))
	for _, c := range m.Classifications {
		mine[c.NodeID] = true
	}
	var out []string
	seen := make(map[string]bool)
	for _, c := range other.Classifications {
		if mine[c.NodeID] && !seen[c.NodeID] {
			seen[c.NodeID] = true
			out = append(out, c.NodeID)
		}
	}
	sort.Strings(out)
	return out
}

// SearchText concatenates the fields used for free-text indexing.
func (m *Material) SearchText() string {
	parts := []string{m.Title, m.Description, m.Language}
	parts = append(parts, m.Tags...)
	parts = append(parts, m.Datasets...)
	return strings.Join(parts, " ")
}

// Validate checks the material's internal consistency and that every
// classification resolves to a classifiable entry in one of the given
// ontologies.
func (m *Material) Validate(onts ...*ontology.Ontology) []error {
	var errs []error
	if strings.TrimSpace(m.ID) != ontology.Slug(m.ID) || m.ID == "" {
		errs = append(errs, fmt.Errorf("material %q: ID must be a non-empty slug", m.ID))
	}
	if strings.TrimSpace(m.Title) == "" {
		errs = append(errs, fmt.Errorf("material %q: empty title", m.ID))
	}
	if !ValidKind(m.Kind) {
		errs = append(errs, fmt.Errorf("material %q: invalid kind %q", m.ID, m.Kind))
	}
	if !ValidLevel(m.Level) {
		errs = append(errs, fmt.Errorf("material %q: invalid level %q", m.ID, m.Level))
	}
	seen := make(map[string]bool, len(m.Classifications))
	for _, c := range m.Classifications {
		if seen[c.NodeID] {
			errs = append(errs, fmt.Errorf("material %q: duplicate classification %q", m.ID, c.NodeID))
			continue
		}
		seen[c.NodeID] = true
		var node *ontology.Node
		for _, o := range onts {
			if n := o.Node(c.NodeID); n != nil {
				node = n
				break
			}
		}
		if node == nil {
			errs = append(errs, fmt.Errorf("material %q: classification %q resolves in no ontology", m.ID, c.NodeID))
			continue
		}
		if !node.Kind.Classifiable() {
			errs = append(errs, fmt.Errorf("material %q: classification %q is a %v, not a topic or outcome", m.ID, c.NodeID, node.Kind))
		}
	}
	return errs
}

// Collection is an ordered set of materials with id lookup.
type Collection struct {
	// Name identifies the collection ("nifty", "peachy", ...).
	Name string
	// Label is the display name ("Nifty Assignments").
	Label string
	items []*Material
	byID  map[string]*Material
}

// NewCollection creates an empty collection.
func NewCollection(name, label string) *Collection {
	return &Collection{Name: name, Label: label, byID: make(map[string]*Material)}
}

// Add appends a material; duplicate IDs are an error.
func (c *Collection) Add(m *Material) error {
	if _, dup := c.byID[m.ID]; dup {
		return fmt.Errorf("collection %q: duplicate material %q", c.Name, m.ID)
	}
	if m.Collection == "" {
		m.Collection = c.Name
	}
	c.items = append(c.items, m)
	c.byID[m.ID] = m
	return nil
}

// MustAdd is Add that panics; for package data covered by tests.
func (c *Collection) MustAdd(m *Material) {
	if err := c.Add(m); err != nil {
		panic(err)
	}
}

// Len returns the number of materials.
func (c *Collection) Len() int { return len(c.items) }

// Get returns the material with the given id, or nil.
func (c *Collection) Get(id string) *Material { return c.byID[id] }

// All returns the materials in insertion order; the slice is a copy but the
// pointed-to materials are shared.
func (c *Collection) All() []*Material {
	out := make([]*Material, len(c.items))
	copy(out, c.items)
	return out
}

// Filter returns the materials matching the predicate, in order.
func (c *Collection) Filter(keep func(*Material) bool) []*Material {
	var out []*Material
	for _, m := range c.items {
		if keep(m) {
			out = append(out, m)
		}
	}
	return out
}

// Validate validates every material and checks collection-level invariants.
func (c *Collection) Validate(onts ...*ontology.Ontology) []error {
	var errs []error
	for _, m := range c.items {
		errs = append(errs, m.Validate(onts...)...)
	}
	return errs
}
