package carcs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"carcs/internal/core"
	"carcs/internal/corpus"
	"carcs/internal/coverage"
	"carcs/internal/material"
	"carcs/internal/ontology"
	"carcs/internal/server"
	"carcs/internal/similarity"
	"carcs/internal/viz"
	"carcs/internal/workflow"
)

// TestEndToEndLifecycle drives the full system the way a deployment would:
// seed, serve over HTTP, submit + review a new material through the API,
// query it back, snapshot over HTTP, restore into a second system, and
// check the restored system still reproduces the paper's figures.
func TestEndToEndLifecycle(t *testing.T) {
	sys, err := core.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	sys.Workflow().Register("prof", workflow.RoleSubmitter)
	sys.Workflow().Register("ed", workflow.RoleEditor)
	ts := httptest.NewServer(server.New(sys, io.Discard))
	defer ts.Close()

	get := func(path string) map[string]any {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		return out
	}
	post := func(path, user string, body any) *http.Response {
		t.Helper()
		b, _ := json.Marshal(body)
		req, _ := http.NewRequest("POST", ts.URL+path, bytes.NewReader(b))
		req.Header.Set("X-User", user)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}

	// Status over the wire.
	if st := get("/api/status"); st["Materials"].(float64) != 98 {
		t.Fatalf("status = %v", st)
	}

	// Submit a material, editor approves it.
	m := map[string]any{
		"id": "net-ring-lab", "title": "Network Ring Lab", "kind": "assignment",
		"level": "CS2", "description": "pass tokens around a ring of processes with sockets",
		"classifications": []string{
			"acm-ieee-cs-curricula-2013/pd/communication-and-coordination/message-passing-communication",
			"nsf-ieee-tcpp-pdc-2012/al/algorithmic-problems/communication/broadcast",
		},
	}
	resp := post("/api/submissions", "prof", m)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("submit = %d", resp.StatusCode)
	}
	var sub map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&sub)
	resp.Body.Close()
	resp = post("/api/submissions/1/review", "ed", map[string]string{"decision": "approved"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("review = %d", resp.StatusCode)
	}
	resp.Body.Close()
	if sys.Material("net-ring-lab") == nil {
		t.Fatal("approved material not installed")
	}

	// Snapshot over HTTP and restore into a second system.
	snapResp, err := http.Get(ts.URL + "/api/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	restored, err := core.Restore(snapResp.Body)
	snapResp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if restored.Len() != 99 {
		t.Fatalf("restored %d materials, want 99", restored.Len())
	}
	g := restored.SimilarityGraph("nifty", "peachy", 2)
	if len(g.Edges) != 24 || len(g.Components(2)) != 1 {
		t.Errorf("restored system lost Figure 3: %d edges", len(g.Edges))
	}
	rep, err := restored.Coverage("cs13", "nifty")
	if err != nil || rep.TopAreas(1)[0] != "SDF" {
		t.Errorf("restored system lost Figure 2a shape")
	}
}

// TestFigureArtifactsGenerate checks the artifact pipeline end to end: every
// figure renderer produces non-trivial output for every panel.
func TestFigureArtifactsGenerate(t *testing.T) {
	onts := []*ontology.Ontology{ontology.CS13(), ontology.PDC12()}
	cols := [][]*material.Material{corpus.Nifty().All(), corpus.Peachy().All(), corpus.ITCS3145().All()}
	for _, o := range onts {
		for _, mats := range cols {
			r := coverage.Compute(o, "panel", mats)
			ascii := viz.CoverageTreeASCII(r, 2)
			svg := viz.CoverageTreeSVG(r, 2)
			sb := viz.CoverageSunburstSVG(r, 3, 400)
			if len(ascii) < 40 || !strings.Contains(svg, "<svg") || !strings.Contains(sb, "<svg") {
				t.Errorf("thin artifact for %s", r.String())
			}
		}
	}
	g := similarity.BuildBipartite(corpus.Nifty().All(), corpus.Peachy().All(), similarity.SharedCount, 2)
	if dot := viz.SimilarityDOT(g, "x"); strings.Count(dot, " -- ") != 24 {
		t.Error("figure 3 DOT wrong")
	}
	if svg := viz.SimilaritySVG(g, 600, 400); strings.Count(svg, "<line") != 24 {
		t.Error("figure 3 SVG wrong")
	}
}

// TestSeededDeterminism: two independently seeded systems agree on every
// analysis output byte-for-byte — the property that makes the figure
// regeneration reproducible.
func TestSeededDeterminism(t *testing.T) {
	a, err := core.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.NewSeeded()
	if err != nil {
		t.Fatal(err)
	}
	var bufA, bufB bytes.Buffer
	if err := a.Snapshot(&bufA); err != nil {
		t.Fatal(err)
	}
	if err := b.Snapshot(&bufB); err != nil {
		t.Fatal(err)
	}
	if bufA.String() != bufB.String() {
		t.Error("seeded snapshots differ")
	}
	ra, _ := a.Coverage("cs13", "")
	rb, _ := b.Coverage("cs13", "")
	if viz.CoverageTreeASCII(ra, 3) != viz.CoverageTreeASCII(rb, 3) {
		t.Error("coverage renderings differ")
	}
}
